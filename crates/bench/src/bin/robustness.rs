//! Robustness bench: Monte Carlo sweep throughput, the skew distribution
//! trajectory, and the fault-injection survival gate.
//!
//! Sweeps seeded perturbations of one nominal n=250 intermingled instance
//! (`astdme_core::robustness`) and emits `BENCH_robustness.json` at the
//! repo root:
//!
//! * `sweeps` — one entry per trajectory point (increasing variant
//!   counts): wall-clock, `variants_per_sec`, and the skew/wirelength
//!   distribution (`p99_skew` is the headline field). Variants are
//!   index-seeded, so each sweep is a bit-exact prefix of the next —
//!   the trajectory shows how the distribution tail converges as the
//!   sample grows, not re-rolled noise.
//! * `fault_injection` — a sweep with a forced panic, a deadline
//!   overrun (injected stall), and a corrupted output on three chosen
//!   variants. The section records that exactly those variants failed
//!   (`injected_fault_survival`), that every survivor's tree was
//!   bit-identical to the fault-free run (`survivors_bit_identical`,
//!   asserted — the run aborts on a mismatch), and that the batch as a
//!   whole never failed (`batch_failed": false` — the CI gate).
//!
//! Usage: `robustness [--quick] [--out PATH] [--variants N]`
//!
//! * `--quick`    — 64 variants, one trajectory point (the CI smoke run);
//! * `--out`      — output path (default `BENCH_robustness.json`);
//! * `--variants` — override the largest trajectory point.

use std::time::Instant;

use astdme_bench::{json, PAPER_BOUND};
use astdme_core::robustness::{sweep, PerturbationSpec, RobustnessReport, SweepConfig};
use astdme_core::{
    AstDme, BatchPlan, BatchPolicy, EngineConfig, Fault, FaultKind, FaultPlan, Instance, StageId,
};
use astdme_instances::{partition, synthetic_instance};

const N: usize = 250;
const GROUPS: usize = 4;
const SEED: u64 = 2006;

fn nominal() -> Instance {
    let p = synthetic_instance(N, SEED, "robust");
    let inst = partition::intermingled(&p, GROUPS, SEED ^ 0xBEEF).expect("valid partition");
    inst.with_groups(
        inst.groups()
            .clone()
            .with_uniform_bound(PAPER_BOUND)
            .expect("bound ok"),
    )
    .expect("regroup ok")
}

fn spec() -> PerturbationSpec {
    PerturbationSpec::new(SEED)
        .with_position_jitter(500.0)
        .with_load_jitter(0.2)
        .with_rc_jitter(0.1)
        .with_drop_rate(0.1)
        .with_survival_floor(0.7)
}

struct SweepMeasurement {
    variants: usize,
    seconds: f64,
    report: RobustnessReport,
}

fn measure_sweep(inst: &Instance, variants: usize) -> SweepMeasurement {
    let router = AstDme::new().with_engine(EngineConfig::fast());
    let config = SweepConfig::new(variants).with_chunk(64);
    let t0 = Instant::now();
    let report = sweep(inst, &spec(), &config, &router).expect("sweep runs");
    let seconds = t0.elapsed().as_secs_f64();
    assert!(
        report.failures.is_empty(),
        "fault-free sweep must not fail variants: {:?}",
        report.failures
    );
    eprintln!(
        "sweep {variants:>5} variants  {seconds:>7.3}s  {:>8.1} variants/s  p99 skew {:.3e}",
        variants as f64 / seconds,
        report.global_skew.p99
    );
    SweepMeasurement {
        variants,
        seconds,
        report,
    }
}

struct FaultMeasurement {
    variants: usize,
    injected: Vec<(usize, &'static str)>,
    failure_kinds: Vec<(&'static str, usize)>,
    survival: bool,
    survivors_bit_identical: bool,
}

/// Injects a panic, a deadline overrun and a corrupted output into 3 of
/// `variants` variants, and verifies the fleet's isolation guarantee at
/// bench scale: exactly those variants fail (with the right kinds), and
/// every survivor's tree is bit-identical to the fault-free run.
fn measure_faults(inst: &Instance, variants: usize) -> FaultMeasurement {
    let router = AstDme::new().with_engine(EngineConfig::fast());
    let s = spec();
    // Deadline generous against an n=250 fast-preset route; the stall
    // alone overruns it.
    let budget = 2.0;
    let injected = [
        (3usize, "panicked"),
        (11, "deadline_exceeded"),
        (17, "malformed_output"),
    ];
    let faults = FaultPlan::new()
        .inject(
            3,
            Fault {
                stage: StageId::Merge,
                kind: FaultKind::Panic,
            },
        )
        .inject(
            11,
            Fault {
                stage: StageId::Embed,
                kind: FaultKind::Stall {
                    seconds: budget + 0.5,
                },
            },
        )
        .inject(
            17,
            Fault {
                stage: StageId::Repair,
                kind: FaultKind::Corrupt,
            },
        );
    let instances: Vec<Instance> = (0..variants)
        .map(|i| s.variant(inst, i).expect("variant builds"))
        .collect();
    let plan = BatchPlan::new(&instances);
    let clean = plan.route(&instances, &router);
    let policy = BatchPolicy::new()
        .with_deadline(budget)
        .with_faults(faults.clone());
    // The injected panic is caught by the fleet layer, but std's default
    // hook would still splat a backtrace across the bench output; silence
    // it for the deliberately-failing section.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let (faulted, _) = plan.route_with_policy(&instances, &router, &policy);

    let failed: Vec<usize> = (0..variants).filter(|&i| faulted[i].is_err()).collect();
    let expected: Vec<usize> = injected.iter().map(|&(i, _)| i).collect();
    let survival = failed == expected
        && injected
            .iter()
            .all(|&(i, kind)| faulted[i].as_ref().err().is_some_and(|e| e.kind() == kind));
    let mut survivors_bit_identical = true;
    for i in (0..variants).filter(|i| !expected.contains(i)) {
        let want = clean[i].as_ref().expect("clean run routes");
        let got = faulted[i].as_ref().expect("survivor routes");
        assert_eq!(got.tree, want.tree, "survivor {i} diverged under faults");
        survivors_bit_identical &= got.tree == want.tree && got.report == want.report;
    }

    // The same schedule through the sweep API: failure accounting only,
    // never a sweep-level error.
    let report = sweep(
        inst,
        &s,
        &SweepConfig::new(variants)
            .with_chunk(64)
            .with_deadline(budget)
            .with_faults(faults),
        &router,
    )
    .expect("a faulted sweep still returns a report");
    std::panic::set_hook(hook);
    let failure_kinds = report.failure_counts();
    eprintln!(
        "faults: {}/{} variants failed ({:?}), survival {}  survivors bit-identical {}",
        report.failures.len(),
        variants,
        failure_kinds,
        survival,
        survivors_bit_identical
    );
    FaultMeasurement {
        variants,
        injected: injected.to_vec(),
        failure_kinds,
        survival,
        survivors_bit_identical,
    }
}

fn to_json(sweeps: &[SweepMeasurement], faults: &FaultMeasurement) -> String {
    let sweep_items: Vec<String> = sweeps
        .iter()
        .map(|m| {
            let r = &m.report;
            json::object(
                &[
                    json::field("variants", format!("{}", m.variants)),
                    json::field("succeeded", format!("{}", r.succeeded)),
                    json::field("seconds", json::number(m.seconds)),
                    json::field(
                        "variants_per_sec",
                        json::number(m.variants as f64 / m.seconds),
                    ),
                    json::field("global_skew_mean", json::number(r.global_skew.mean)),
                    json::field("global_skew_p50", json::number(r.global_skew.p50)),
                    json::field("global_skew_p90", json::number(r.global_skew.p90)),
                    json::field("p99_skew", json::number(r.global_skew.p99)),
                    json::field("global_skew_max", json::number(r.global_skew.max)),
                    json::field("intra_group_skew_p99", json::number(r.intra_group_skew.p99)),
                    json::field("wirelength_p50", json::number(r.wirelength.p50)),
                    json::field("wirelength_p99", json::number(r.wirelength.p99)),
                ],
                4,
            )
        })
        .collect();
    let injected_items: Vec<String> = faults
        .injected
        .iter()
        .map(|&(i, kind)| {
            json::object(
                &[
                    json::field("variant", format!("{i}")),
                    json::field("kind", json::quote(kind)),
                ],
                4,
            )
        })
        .collect();
    let kind_items: Vec<String> = faults
        .failure_kinds
        .iter()
        .map(|&(kind, count)| {
            json::object(
                &[
                    json::field("kind", json::quote(kind)),
                    json::field("count", format!("{count}")),
                ],
                4,
            )
        })
        .collect();
    let fault_obj = json::object(
        &[
            json::field("variants", format!("{}", faults.variants)),
            json::field("injected", json::array(&injected_items, 2)),
            json::field("failure_counts", json::array(&kind_items, 2)),
            json::field(
                "injected_fault_survival",
                if faults.survival { "true" } else { "false" },
            ),
            json::field(
                "survivors_bit_identical",
                if faults.survivors_bit_identical {
                    "true"
                } else {
                    "false"
                },
            ),
            // The sweep returned a report (asserted above): injected
            // faults consume their own slots, never the batch.
            json::field("batch_failed", "false"),
        ],
        2,
    );
    format!(
        "{{\n  \"bench\": \"robustness\",\n  \"n\": {N},\n  \"groups\": {GROUPS},\n  \"seed\": {SEED},\n  \"router\": \"AST-DME\",\n  \"engine\": \"fast\",\n  \"sweeps\": {},\n  \"fault_injection\": {}\n}}\n",
        json::array(&sweep_items, 2),
        fault_obj
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_robustness.json".to_string());
    let top: Option<usize> = args.iter().position(|a| a == "--variants").map(|i| {
        args.get(i + 1)
            .expect("--variants needs a number")
            .parse()
            .expect("variant count must be an integer")
    });
    // Trajectory points: each is a bit-exact prefix of the next (variants
    // are index-seeded), so the table shows tail convergence, not
    // re-rolled noise.
    let points: Vec<usize> = match (quick, top) {
        (_, Some(v)) => vec![v],
        (true, None) => vec![64],
        (false, None) => vec![64, 256, 1000],
    };

    let inst = nominal();
    let sweeps: Vec<SweepMeasurement> = points
        .iter()
        .map(|&v| measure_sweep(&inst, v.max(1)))
        .collect();
    let faults = measure_faults(&inst, points.iter().copied().max().unwrap_or(64).min(64));
    let doc = to_json(&sweeps, &faults);
    std::fs::write(&out_path, &doc).expect("write BENCH_robustness.json");
    eprintln!("wrote {out_path}");

    println!("| variants | seconds | variants/s | p50 skew | p99 skew | p99 wirelength |");
    println!("|----------|---------|------------|----------|----------|----------------|");
    for m in &sweeps {
        println!(
            "| {} | {:.3} | {:.1} | {:.3e} | {:.3e} | {:.0} |",
            m.variants,
            m.seconds,
            m.variants as f64 / m.seconds,
            m.report.global_skew.p50,
            m.report.global_skew.p99,
            m.report.wirelength.p99
        );
    }
    println!();
    println!(
        "fault injection: {} injected, survival {}, survivors bit-identical {}",
        faults.injected.len(),
        faults.survival,
        faults.survivors_bit_identical
    );
    assert!(
        faults.survival,
        "injected faults must fail exactly their own variants"
    );
}
