//! Regenerates **Figure 2** of the paper: constructing per-group trees
//! separately and stitching them (the earlier associative-skew approach)
//! wastes wire when groups are intermingled; merging across groups
//! recovers it — "the wirelength can be reduced up to 1/3".

use astdme_core::{
    audit, AstDme, ClockRouter, DelayModel, Groups, Instance, Point, RcParams, Sink, StitchPerGroup,
};

fn main() {
    // The figure's layout: two rectangle-group sinks and two circle-group
    // sinks interleaved along a row, source above.
    let sinks = vec![
        Sink::new(Point::new(0.0, 0.0), 2e-14),    // rectangle
        Sink::new(Point::new(1000.0, 0.0), 2e-14), // circle
        Sink::new(Point::new(2000.0, 0.0), 2e-14), // rectangle
        Sink::new(Point::new(3000.0, 0.0), 2e-14), // circle
    ];
    let inst = Instance::new(
        sinks,
        Groups::from_assignments(vec![0, 1, 0, 1], 2).expect("two interleaved groups"),
        RcParams::default(),
        Point::new(1500.0, 1500.0),
    )
    .expect("valid instance");
    let model = DelayModel::elmore(*inst.rc());

    let stitched = StitchPerGroup::new()
        .route(&inst)
        .expect("stitching routes");
    let rs = audit(&stitched, &inst, &model);
    let ast = AstDme::new().route(&inst).expect("AST-DME routes");
    let ra = audit(&ast, &inst, &model);

    println!("Figure 2 — separate-then-stitch vs cross-group merging\n");
    println!("| Approach | Wirelength (um) | Intra-group skew (ps) |");
    println!("|----------|-----------------|----------------------|");
    println!(
        "| (a) per-group trees + stitch | {:.0} | {:.4} |",
        rs.wirelength(),
        rs.max_intra_group_skew() * 1e12
    );
    println!(
        "| (b) AST-DME cross-group merge | {:.0} | {:.4} |",
        ra.wirelength(),
        ra.max_intra_group_skew() * 1e12
    );
    println!(
        "\nCross-group merging saves {:.1}% (paper: up to 1/3).",
        (1.0 - ra.wirelength() / rs.wirelength()) * 100.0
    );
    assert!(
        ra.wirelength() < rs.wirelength(),
        "AST-DME must beat stitching on interleaved groups"
    );
}
