//! Ablations for the design choices called out in DESIGN.md:
//!
//! 1. Ch. V.F enhancement 1 — simultaneous multi-merging vs plain greedy
//!    (runtime vs wirelength).
//! 2. Ch. V.F enhancement 2 — delay-target merging-order bias (snaking).
//! 3. Ch. III — the pathlength delay model does not control Elmore skew.
//! 4. Group fusion (Fig. 6 steps 6-7) vs the general per-subtree offset
//!    machinery (wirelength and stability).
//!
//! Usage: `cargo run -p astdme-bench --release --bin ablation [--quick]`

use std::time::Instant;

use astdme_core::{
    audit, AstDme, ClockRouter, DelayModel, EngineConfig, Instance, MergeOrder, TopoConfig,
};
use astdme_instances::{partition, r_benchmark, RBench};

fn route_stats(router: &AstDme, inst: &Instance, label: &str) {
    let model = DelayModel::elmore(*inst.rc());
    let t0 = Instant::now();
    let tree = router.route(inst).expect("router succeeds");
    let cpu = t0.elapsed().as_secs_f64();
    let report = audit(&tree, inst, &model);
    println!(
        "| {label} | {:.0} | {:.0} | {:.3e} | {:.2} |",
        report.wirelength(),
        report.snaking(),
        report.max_intra_group_skew(),
        cpu
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let bench = if quick { RBench::R1 } else { RBench::R3 };
    let placement = r_benchmark(bench, 2006);
    let inst = partition::intermingled(&placement, 6, 2012).expect("valid partition");
    let model = DelayModel::elmore(*inst.rc());

    println!(
        "Ablations on {} ({} sinks, 6 intermingled groups)\n",
        placement.name,
        inst.sink_count()
    );
    println!("| Configuration | Wirelen (um) | Snaking (um) | Intra skew (s) | CPU (s) |");
    println!("|---------------|--------------|--------------|----------------|---------|");

    // 1. Merging order: greedy single-pair vs multi-merge.
    route_stats(
        &AstDme::new().with_topo(TopoConfig::greedy()),
        &inst,
        "greedy nearest-pair (Fig. 6 base)",
    );
    route_stats(
        &AstDme::new().with_topo(TopoConfig {
            order: MergeOrder::MultiMerge { fraction: 0.25 },
            delay_weight: 0.0,
        }),
        &inst,
        "multi-merge 25% (Ch. V.F enh. 1)",
    );

    // 2. Delay-target bias.
    route_stats(
        &AstDme::new().with_topo(TopoConfig {
            order: MergeOrder::MultiMerge { fraction: 0.25 },
            delay_weight: 1e15, // 1 um per fs of accumulated delay
        }),
        &inst,
        "delay-target bias (Ch. V.F enh. 2)",
    );

    // 3. Group fusion vs general offset machinery.
    route_stats(&AstDme::new(), &inst, "group fusion ON (default)");
    route_stats(
        &AstDme::new().with_engine(EngineConfig {
            fuse_groups: false,
            ..EngineConfig::default()
        }),
        &inst,
        "group fusion OFF (per-subtree sneaking)",
    );

    // 4. Delay model: pathlength routing audited under Elmore.
    let tree = AstDme::new()
        .with_model(DelayModel::pathlength())
        .route(&inst)
        .expect("pathlength routes");
    let under_path = audit(&tree, &inst, &DelayModel::pathlength());
    let under_elmore = audit(&tree, &inst, &model);
    println!(
        "\nCh. III check — pathlength-balanced tree: pathlength skew = {:.3} um-equiv, \
         but audited Elmore intra-group skew = {:.1} ps (vs ~0 for Elmore-driven AST-DME): \
         the linear model does not control real skew.",
        under_path.max_intra_group_skew(),
        under_elmore.max_intra_group_skew() * 1e12
    );
}
