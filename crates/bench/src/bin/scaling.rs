//! Scaling bench: incremental vs from-scratch merge planning.
//!
//! Routes synthetic intermingled instances at n ∈ {250, 1000, 4000, 16000}
//! with both drivers (`run_bottom_up` on the incremental `MergePlanner`,
//! `run_bottom_up_from_scratch` on the reference planner) under both merge
//! orders, and emits `BENCH_scaling.json` at the repo root so later PRs
//! have a perf trajectory to regress against.
//!
//! Usage: `scaling [--quick] [--out PATH] [--sizes a,b,c]`
//!
//! * `--quick` — n = 250 only (the CI smoke run);
//! * `--out`   — output path (default `BENCH_scaling.json`);
//! * `--sizes` — comma-separated instance sizes overriding the default.

use std::time::Instant;

use astdme_bench::{json, PAPER_BOUND};
use astdme_core::{
    run_bottom_up, run_bottom_up_from_scratch, DelayModel, EngineConfig, Instance, TopoConfig,
};
use astdme_instances::{partition, synthetic_instance};

/// Default sink counts, straddling the paper's r1–r5 range (267–3101) up
/// to ~5x beyond it.
const DEFAULT_SIZES: [usize; 4] = [250, 1000, 4000, 16000];

/// Group count for the synthetic instances (intermingled, as in Table II).
const GROUPS: usize = 4;

const SEED: u64 = 2006;

#[derive(Debug, Clone)]
struct Measurement {
    n: usize,
    planner: &'static str,
    order: &'static str,
    seconds: f64,
    merges_per_sec: f64,
    wirelength_um: f64,
}

fn instance(n: usize) -> Instance {
    let p = synthetic_instance(n, SEED, &format!("s{n}"));
    let inst = partition::intermingled(&p, GROUPS, SEED ^ 0xBEEF).expect("valid partition");
    inst.with_groups(
        inst.groups()
            .clone()
            .with_uniform_bound(PAPER_BOUND)
            .expect("bound ok"),
    )
    .expect("regroup ok")
}

fn route(inst: &Instance, topo: &TopoConfig, from_scratch: bool) -> (f64, f64) {
    let model = DelayModel::elmore(*inst.rc());
    // The budget preset: the engine's per-merge work is identical for both
    // planners, so the cheaper it is, the more honestly the measurement
    // isolates planning cost — which is what this bench tracks.
    let engine = EngineConfig::fast();
    let t0 = Instant::now();
    let (forest, root) = if from_scratch {
        run_bottom_up_from_scratch(inst, model, engine, topo)
    } else {
        run_bottom_up(inst, model, engine, topo)
    };
    let secs = t0.elapsed().as_secs_f64();
    let tree = forest.embed(root, inst.source());
    (secs, tree.total_wirelength())
}

fn measure(n: usize) -> Vec<Measurement> {
    let inst = instance(n);
    let mut out = Vec::new();
    for (order_name, topo) in [
        ("greedy", TopoConfig::greedy()),
        ("multi_merge", TopoConfig::default()),
    ] {
        for (planner, from_scratch) in [("incremental", false), ("from_scratch", true)] {
            let (secs, wl) = route(&inst, &topo, from_scratch);
            eprintln!(
                "n={n:>6} {order_name:<12} {planner:<13} {secs:>9.3}s  {:>12.0} merges/s  wl {wl:.0}",
                (n - 1) as f64 / secs
            );
            out.push(Measurement {
                n,
                planner,
                order: order_name,
                seconds: secs,
                merges_per_sec: (n - 1) as f64 / secs,
                wirelength_um: wl,
            });
        }
        // The planners must route the same tree: wirelength is the
        // end-to-end witness.
        let wls: Vec<f64> = out
            .iter()
            .filter(|m| m.n == n && m.order == order_name)
            .map(|m| m.wirelength_um)
            .collect();
        assert!(
            (wls[0] - wls[1]).abs() <= 1e-6 * wls[0].max(1.0),
            "planners diverged at n={n} {order_name}: {} vs {}",
            wls[0],
            wls[1]
        );
    }
    out
}

fn to_json(measurements: &[Measurement]) -> String {
    let items: Vec<String> = measurements
        .iter()
        .map(|m| {
            json::object(
                &[
                    json::field("n", format!("{}", m.n)),
                    json::field("planner", json::quote(m.planner)),
                    json::field("order", json::quote(m.order)),
                    json::field("seconds", json::number(m.seconds)),
                    json::field("merges_per_sec", json::number(m.merges_per_sec)),
                    json::field("wirelength_um", json::number(m.wirelength_um)),
                ],
                4,
            )
        })
        .collect();
    // Summary: per (n, order) speedup of incremental over from-scratch.
    let mut summaries = Vec::new();
    let mut sizes: Vec<usize> = measurements.iter().map(|m| m.n).collect();
    sizes.sort_unstable();
    sizes.dedup();
    for &n in &sizes {
        for order in ["greedy", "multi_merge"] {
            let find = |planner: &str| {
                measurements
                    .iter()
                    .find(|m| m.n == n && m.order == order && m.planner == planner)
                    .map(|m| m.seconds)
            };
            if let (Some(inc), Some(scratch)) = (find("incremental"), find("from_scratch")) {
                summaries.push(json::object(
                    &[
                        json::field("n", format!("{n}")),
                        json::field("order", json::quote(order)),
                        json::field("speedup", json::number(scratch / inc)),
                    ],
                    4,
                ));
            }
        }
    }
    format!(
        "{{\n  \"bench\": \"scaling\",\n  \"groups\": {GROUPS},\n  \"seed\": {SEED},\n  \"measurements\": {},\n  \"speedups\": {}\n}}\n",
        json::array(&items, 2),
        json::array(&summaries, 2)
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_scaling.json".to_string());
    let sizes: Vec<usize> = match args.iter().position(|a| a == "--sizes") {
        Some(i) => args
            .get(i + 1)
            .expect("--sizes needs a comma-separated list")
            .split(',')
            .map(|s| s.trim().parse().expect("size must be an integer"))
            .collect(),
        None if quick => vec![250],
        None => DEFAULT_SIZES.to_vec(),
    };

    let mut measurements = Vec::new();
    for &n in &sizes {
        measurements.extend(measure(n));
    }
    let doc = to_json(&measurements);
    std::fs::write(&out_path, &doc).expect("write BENCH_scaling.json");
    eprintln!("wrote {out_path}");

    // Human-readable summary on stdout.
    println!("| n | order | planner | seconds | merges/s | wirelength (um) |");
    println!("|---|-------|---------|---------|----------|-----------------|");
    for m in &measurements {
        println!(
            "| {} | {} | {} | {:.3} | {:.0} | {:.0} |",
            m.n, m.order, m.planner, m.seconds, m.merges_per_sec, m.wirelength_um
        );
    }
}
