//! Scaling bench: incremental vs from-scratch merge planning.
//!
//! Routes synthetic intermingled instances at n ∈ {250, 1000, 4000, 16000}
//! with both drivers (`run_bottom_up` on the incremental `MergePlanner`,
//! `run_bottom_up_from_scratch` on the reference planner) under both merge
//! orders, and emits `BENCH_scaling.json` at the repo root so later PRs
//! have a perf trajectory to regress against.
//!
//! Usage: `scaling [--quick] [--out PATH] [--sizes a,b,c] [--alloc-budget N]`
//!
//! * `--quick` — n = 250 only (the CI smoke run);
//! * `--out`   — output path (default `BENCH_scaling.json`);
//! * `--sizes` — comma-separated instance sizes overriding the default;
//! * `--alloc-budget` — fail (exit 1) if any `allocs_per_merge`
//!   measurement exceeds `N`. Allocation counts are deterministic, so this
//!   is a CI-stable regression gate where timings would flake.
//!
//! The binary runs under a counting global allocator; every run emits an
//! `allocs_per_merge` section recording total allocations per merge for
//! the incremental planner under both merge orders.
//!
//! When built with `--features parallel`, each size additionally gets a
//! parallel-vs-serial measurement of the engine's candidate-pair
//! expansion fan-out (incremental planner, greedy order, thorough engine
//! preset so each merge expands enough pairs to fan out): "parallel" runs
//! with auto thread count, "serial" forces one thread through
//! `astdme_par::set_thread_override` — byte-for-byte the serial code
//! path. Both must route identical wirelength; the speedup lands in the
//! `parallel_speedups` JSON section (≈1.0 on single-core machines).
//!
//! Every run also emits a `batch_throughput` section: a portfolio of
//! distinct instances routed through the fleet layer
//! (`astdme_core::route_batch`, instance-level fan-out) vs a sequential
//! `route_traced` loop, recording instances/sec and the batch-vs-
//! sequential speedup. Wirelengths must match to the last bit — the fleet
//! layer changes scheduling, never trees. Two portfolios are measured:
//!
//! * **uniform** — `BATCH_INSTANCES` same-size instances at the smallest
//!   requested size (the PR-4 protocol, kept for trajectory continuity);
//! * **skewed** — one n=4000 instance plus eight n=250 ones, the
//!   load-imbalance shape that starved the old fixed contiguous-chunk
//!   schedule. The fleet's cost model (calibrated from the sequential
//!   reference pass) schedules it largest-first onto the work-stealing
//!   pool; the entry records load balance (max/min worker busy-time, 1.0
//!   on a single-core box where the fan-out falls back to serial) next to
//!   instances/sec, and asserts batch wirelengths bit-equal to the
//!   sequential loop (`"wirelength_bit_equal": true` in the JSON).
//!
//! A `dedup` section measures the content-addressed subtree cache
//! ([`astdme_core::SubtreeCache`]): a portfolio with repeated placements
//! routed cold (no cache — every instance pays the full merge) vs warm
//! (cache primed — every instance hits and splices). The portfolio is
//! origin-anchored so the cached frame coincides with the uncached one;
//! the binary asserts warm wirelengths bit-equal to cold
//! (`"wirelength_bit_equal": true`) and the warm-over-cold throughput
//! speedup at ≥ 1.5x.
//!
//! Finally an `eco` section measures incremental ECO re-routing
//! ([`astdme_core::EcoSession`]): for each n and k ∈ {1, 8, 64}, a
//! standing session flushes "move k of n sinks" batches (away and back,
//! best-of reps) against a from-scratch route of the same edited
//! instance. Every flush is asserted bit-identical to the from-scratch
//! tree (`"wirelength_bit_equal": true`), and at k=1, n ≥ 4000 the
//! `speedup_incremental_vs_scratch` is gated at ≥ 2.0x in-binary — the
//! dirty-region replay must stay sublinear in n.
//!
//! A `latency` section measures what the persistent pool and the
//! completion-order stream buy beyond throughput:
//!
//! * **time-to-first-result** — `route_stream` over the skewed portfolio
//!   vs the batch barrier's full wait, asserted strictly smaller
//!   in-binary (the stream yields each outcome as it completes; the
//!   barrier returns nothing until the last instance lands);
//! * **pool-reuse speedup** — repeated small batches through the
//!   persistent pool vs a resurrected spawn-per-call baseline (scoped
//!   threads spawned and joined every call, the pre-pool shape), under an
//!   explicit four-thread override so the fan-out engages even on a
//!   single-core box; asserted ≥ 1.0 in-binary;
//! * **barrier-free sweep throughput** — Monte Carlo variants/sec through
//!   the streaming sweep (no chunk barriers);
//! * the barrier's per-worker queue-wait and idle seconds (also surfaced
//!   per `batch_throughput` entry), from the `StealStats` columns the
//!   pool records on every fan-out.
//!
//! Stream wirelengths are asserted bit-equal to the sequential reference
//! (`"wirelength_bit_equal": true`), same as the batch sections.

use std::alloc::{GlobalAlloc, Layout, System};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use astdme_bench::{json, PAPER_BOUND};
use astdme_core::{
    route_batch, route_batch_cached, route_stream, run_bottom_up, run_bottom_up_from_scratch,
    sweep, AstDme, BatchPlan, ClockRouter, CostModel, DelayModel, EcoEdit, EcoSession,
    EngineConfig, Instance, PerturbationSpec, Point, StreamPolicy, SubtreeCache, SweepConfig,
    TopoConfig,
};
use astdme_instances::{partition, synthetic_instance};

/// Counting wrapper around the system allocator: every `alloc`/`realloc`
/// bumps a relaxed atomic. Unlike wall-clock timings, the counts are
/// deterministic for a fixed code path, which makes `allocs_per_merge`
/// a regressable number — the witness that the merge hot path performs
/// O(1) amortized allocations per merge (no per-pair scratch or delay-map
/// allocations).
///
/// `tests/alloc_budget.rs` (repo root) carries a twin of this impl — the
/// library crates forbid `unsafe_code`, so the two binaries each host
/// their own copy; keep them counting the same events.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counter has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        astdme_core::allocmeter::on_alloc();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        astdme_core::allocmeter::on_alloc();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocations since process start (monotone; read deltas around a region).
fn alloc_count() -> u64 {
    ALLOC_COUNT.load(Ordering::Relaxed)
}

/// Default sink counts, straddling the paper's r1–r5 range (267–3101) up
/// to ~5x beyond it.
const DEFAULT_SIZES: [usize; 4] = [250, 1000, 4000, 16000];

/// Group count for the synthetic instances (intermingled, as in Table II).
const GROUPS: usize = 4;

const SEED: u64 = 2006;

#[derive(Debug, Clone)]
struct Measurement {
    n: usize,
    planner: &'static str,
    order: &'static str,
    seconds: f64,
    merges_per_sec: f64,
    wirelength_um: f64,
}

/// One allocation-count measurement (incremental planner, fast preset):
/// total allocations across the bottom-up merge loop, divided by the
/// `n - 1` merges it performs.
#[derive(Debug, Clone)]
struct AllocMeasurement {
    n: usize,
    order: &'static str,
    total_allocs: u64,
    allocs_per_merge: f64,
}

/// One parallel-vs-serial expansion measurement (parallel feature only;
/// empty otherwise).
#[derive(Debug, Clone)]
struct ParMeasurement {
    n: usize,
    expansion: &'static str,
    threads: usize,
    seconds: f64,
    wirelength_um: f64,
}

fn instance(n: usize) -> Instance {
    instance_seeded(n, SEED)
}

fn instance_seeded(n: usize, seed: u64) -> Instance {
    let p = synthetic_instance(n, seed, &format!("s{n}"));
    let inst = partition::intermingled(&p, GROUPS, seed ^ 0xBEEF).expect("valid partition");
    inst.with_groups(
        inst.groups()
            .clone()
            .with_uniform_bound(PAPER_BOUND)
            .expect("bound ok"),
    )
    .expect("regroup ok")
}

fn route(inst: &Instance, topo: &TopoConfig, from_scratch: bool) -> (f64, f64) {
    let model = DelayModel::elmore(*inst.rc());
    // The budget preset: the engine's per-merge work is identical for both
    // planners, so the cheaper it is, the more honestly the measurement
    // isolates planning cost — which is what this bench tracks.
    let engine = EngineConfig::fast();
    let t0 = Instant::now();
    let (forest, root) = if from_scratch {
        run_bottom_up_from_scratch(inst, model, engine, topo)
    } else {
        run_bottom_up(inst, model, engine, topo)
    };
    let secs = t0.elapsed().as_secs_f64();
    let tree = forest.embed(root, inst.source());
    (secs, tree.total_wirelength())
}

fn measure(n: usize, inst: &Instance) -> Vec<Measurement> {
    // Alternate the two planners and keep each one's best of [`REPS`]
    // runs: a single fixed-order sample bakes run-order bias (allocator /
    // page-cache warmth) into the recorded speedup — the same discipline
    // `measure_parallel` uses, for the same reason. The from-scratch
    // planner is O(n²)+ in greedy order, so its rep count shrinks to one
    // once a single run is slow enough for noise not to matter.
    const REPS: usize = 5;
    const SINGLE_REP_ABOVE_SECS: f64 = 30.0;
    let mut out = Vec::new();
    for (order_name, topo) in [
        ("greedy", TopoConfig::greedy()),
        ("multi_merge", TopoConfig::default()),
    ] {
        let variants = [("incremental", false), ("from_scratch", true)];
        let mut best = [f64::INFINITY; 2];
        let mut wl = [0.0f64; 2];
        for rep in 0..REPS {
            for (slot, &(_, from_scratch)) in variants.iter().enumerate() {
                if rep > 0 && best[slot] > SINGLE_REP_ABOVE_SECS {
                    continue;
                }
                let (secs, w) = route(inst, &topo, from_scratch);
                best[slot] = best[slot].min(secs);
                wl[slot] = w;
            }
        }
        for (slot, &(planner, _)) in variants.iter().enumerate() {
            let (secs, wl) = (best[slot], wl[slot]);
            eprintln!(
                "n={n:>6} {order_name:<12} {planner:<13} {secs:>9.3}s  {:>12.0} merges/s  wl {wl:.0}",
                (n - 1) as f64 / secs
            );
            out.push(Measurement {
                n,
                planner,
                order: order_name,
                seconds: secs,
                merges_per_sec: (n - 1) as f64 / secs,
                wirelength_um: wl,
            });
        }
        // The planners must route the same tree: wirelength is the
        // end-to-end witness.
        let wls: Vec<f64> = out
            .iter()
            .filter(|m| m.n == n && m.order == order_name)
            .map(|m| m.wirelength_um)
            .collect();
        assert!(
            (wls[0] - wls[1]).abs() <= 1e-6 * wls[0].max(1.0),
            "planners diverged at n={n} {order_name}: {} vs {}",
            wls[0],
            wls[1]
        );
    }
    out
}

/// Counts allocations across one bottom-up route per merge order
/// (incremental planner, fast preset — the same configuration the timing
/// runs use). The count spans `run_bottom_up` only: leaf/planner setup
/// amortizes over the merges, embedding is excluded (it is not the merge
/// hot path). Deterministic for a fixed build, so the JSON section is a
/// regression baseline, not a wall-clock estimate.
fn measure_allocs(n: usize, inst: &Instance) -> Vec<AllocMeasurement> {
    let model = DelayModel::elmore(*inst.rc());
    let engine = EngineConfig::fast();
    let mut out = Vec::new();
    for (order_name, topo) in [
        ("greedy", TopoConfig::greedy()),
        ("multi_merge", TopoConfig::default()),
    ] {
        let a0 = alloc_count();
        let (_forest, _root) = run_bottom_up(inst, model, engine, &topo);
        let total_allocs = alloc_count() - a0;
        let allocs_per_merge = total_allocs as f64 / (n - 1) as f64;
        eprintln!(
            "n={n:>6} {order_name:<12} allocs/merge {allocs_per_merge:7.2}  ({total_allocs} total)"
        );
        out.push(AllocMeasurement {
            n,
            order: order_name,
            total_allocs,
            allocs_per_merge,
        });
    }
    out
}

/// Measures the engine's candidate-pair expansion with the parallel
/// fan-out (auto thread count) against the forced one-thread serial path,
/// on the incremental planner in greedy order with the thorough engine
/// preset (enough pairs per merge for the fan-out to engage). Asserts both
/// route identical wirelength — the determinism the proptests pin down,
/// witnessed end-to-end at bench scale.
///
/// Each variant is timed `PAR_REPS` times in alternating order and the
/// minimum is kept: a single fixed-order sample bakes run-order bias
/// (allocator/page-cache warmth) into the recorded speedup, which showed
/// up as phantom 5-30% deltas between byte-identical code paths.
#[cfg(feature = "parallel")]
fn measure_parallel(n: usize, inst: &Instance) -> Vec<ParMeasurement> {
    const PAR_REPS: usize = 3;
    let model = DelayModel::elmore(*inst.rc());
    let engine = EngineConfig::thorough();
    let topo = TopoConfig::greedy();
    let auto_threads = std::thread::available_parallelism().map_or(1, |t| t.get());
    // Discarded warmup: the first route after an instance build pays
    // allocator/page-cache cold-start on top of the per-rep noise.
    let _ = run_bottom_up(inst, model, engine, &topo);
    let variants = [("parallel", None), ("serial", NonZeroUsize::new(1))];
    let mut best = [f64::INFINITY; 2];
    let mut wl_seen: Option<f64> = None;
    for _rep in 0..PAR_REPS {
        for (slot, &(_, threads)) in variants.iter().enumerate() {
            astdme_par::set_thread_override(threads);
            let t0 = Instant::now();
            let (forest, root) = run_bottom_up(inst, model, engine, &topo);
            let secs = t0.elapsed().as_secs_f64();
            let tree = forest.embed(root, inst.source());
            let wl = tree.total_wirelength();
            match wl_seen {
                Some(prev) => assert!(
                    prev == wl,
                    "parallel expansion diverged at n={n}: {prev} vs {wl}"
                ),
                None => wl_seen = Some(wl),
            }
            best[slot] = best[slot].min(secs);
        }
    }
    astdme_par::set_thread_override(None);
    let wl = wl_seen.expect("at least one route ran");
    variants
        .iter()
        .zip(best)
        .map(|(&(expansion, threads), secs)| {
            eprintln!(
                "n={n:>6} expansion {expansion:<8} {secs:>9.3}s  wl {wl:.0} (thorough preset, best of {PAR_REPS})"
            );
            ParMeasurement {
                n,
                expansion,
                threads: threads.map_or(auto_threads, NonZeroUsize::get),
                seconds: secs,
                wirelength_um: wl,
            }
        })
        .collect()
}

#[cfg(not(feature = "parallel"))]
fn measure_parallel(_n: usize, _inst: &Instance) -> Vec<ParMeasurement> {
    Vec::new()
}

/// One batch-throughput measurement: a portfolio of distinct instances
/// routed end-to-end through the fleet layer ([`astdme_core::fleet`]) vs
/// a sequential `route_traced` loop over the same instances.
#[derive(Debug, Clone)]
struct BatchMeasurement {
    /// `"uniform"` (same-size portfolio) or `"skewed"` (one large + many
    /// small).
    portfolio: &'static str,
    /// Human-readable size mix, e.g. `"6x250"` or `"1x4000+8x250"`.
    sizes: String,
    n: usize,
    instances: usize,
    batch_seconds: f64,
    sequential_seconds: f64,
    instances_per_sec: f64,
    speedup: f64,
    /// Workers the fastest batch rep fanned out to (1 = serial fallback).
    workers: usize,
    /// Max/min worker busy-time of the fastest batch rep (1.0 when
    /// serial).
    balance: f64,
    /// Worst submission-to-start latency across the fastest rep's workers
    /// — how long a pool checkout + job dispatch kept work waiting.
    max_queue_wait_seconds: f64,
    /// Total busy-window time the fastest rep's workers spent not
    /// executing instances (claim overhead, channel sends, starvation at
    /// the tail of the schedule).
    total_idle_seconds: f64,
}

/// Measures fleet-layer throughput over a portfolio of `BATCH_INSTANCES`
/// distinct instances at size `n` (full AST-DME routes, fast preset).
/// Both paths are timed `BATCH_REPS` times in alternating order and the
/// minimum kept — the same discipline as [`measure`] — and every outcome's
/// wirelength must match the sequential reference to the last bit (the
/// fleet layer changes scheduling, never trees). On a single-core machine
/// `route_batch` takes its serial fallback, so the speedup sits at ~1.0 by
/// construction; on multicore the instance fan-out engages (with nested
/// engine parallelism forced serial by `astdme_par`'s worker guard).
fn measure_batch(n: usize) -> BatchMeasurement {
    const BATCH_INSTANCES: usize = 6;
    let instances: Vec<Instance> = (0..BATCH_INSTANCES)
        .map(|i| instance_seeded(n, SEED.wrapping_add(1 + i as u64)))
        .collect();
    measure_portfolio("uniform", format!("{BATCH_INSTANCES}x{n}"), n, instances)
}

/// The deliberately skewed portfolio: one n=4000 instance plus eight
/// n=250 ones. Under the old fixed contiguous-chunk schedule the worker
/// that drew the n=4000 chunk also dragged whatever small instances
/// landed behind it; the cost-model schedule hands the large instance out
/// first and the work-stealing pool drains the small ones around it.
fn measure_batch_skewed() -> BatchMeasurement {
    const LARGE_N: usize = 4000;
    const SMALL_N: usize = 250;
    const SMALL_COUNT: usize = 8;
    let mut instances = vec![instance_seeded(LARGE_N, SEED ^ 0x51)];
    instances.extend(
        (0..SMALL_COUNT).map(|i| instance_seeded(SMALL_N, SEED.wrapping_add(101 + i as u64))),
    );
    measure_portfolio(
        "skewed",
        format!("1x{LARGE_N}+{SMALL_COUNT}x{SMALL_N}"),
        SMALL_N,
        instances,
    )
}

/// Times one portfolio through the fleet layer vs the sequential loop.
/// The sequential reference pass doubles as warmup *and* cost-model
/// calibration: its observed per-stage seconds feed the [`CostModel`]
/// whose [`BatchPlan`] then schedules the batch largest-first. Both paths
/// are timed `BATCH_REPS` times in alternating order and the minimum kept
/// — the same discipline as [`measure`] — and every outcome's wirelength
/// must match the sequential reference to the last bit (the fleet layer
/// changes scheduling, never trees). On a single-core machine the batch
/// takes its serial fallback, so the speedup sits at ~1.0 and the balance
/// at exactly 1.0 by construction; on multicore the fan-out engages (with
/// nested engine parallelism forced serial by `astdme_par`'s worker
/// guard) and the balance records max/min worker busy-time.
fn measure_portfolio(
    portfolio: &'static str,
    sizes: String,
    n: usize,
    instances: Vec<Instance>,
) -> BatchMeasurement {
    const BATCH_REPS: usize = 5;
    let router = AstDme::new().with_engine(EngineConfig::fast());
    // Reference wirelengths (and warmup) from one sequential pass, which
    // also calibrates the cost model with real per-instance seconds.
    let mut model = CostModel::new();
    let reference: Vec<f64> = instances
        .iter()
        .map(|inst| {
            let out = router.route_traced(inst).expect("routes");
            model.observe(inst, &out.stats);
            out.report.wirelength()
        })
        .collect();
    let plan = BatchPlan::with_model(&instances, &model);
    let check = |wls: &[f64], label: &str| {
        assert_eq!(wls.len(), reference.len());
        for (i, (&wl, &expected)) in wls.iter().zip(&reference).enumerate() {
            assert!(
                wl == expected,
                "{label} diverged on {portfolio} portfolio instance {i}: {wl} vs {expected}"
            );
        }
    };
    let mut best = [f64::INFINITY; 2]; // [sequential, batch]
    let mut best_stats = astdme_core::StealStats::default();
    for _rep in 0..BATCH_REPS {
        let t0 = Instant::now();
        let wls: Vec<f64> = instances
            .iter()
            .map(|inst| {
                router
                    .route_traced(inst)
                    .expect("routes")
                    .report
                    .wirelength()
            })
            .collect();
        best[0] = best[0].min(t0.elapsed().as_secs_f64());
        check(&wls, "sequential loop");

        let t0 = Instant::now();
        let (outcomes, stats) = plan.route_with_stats(&instances, &router);
        let secs = t0.elapsed().as_secs_f64();
        let wls: Vec<f64> = outcomes
            .into_iter()
            .map(|out| out.expect("routes").report.wirelength())
            .collect();
        if secs < best[1] {
            best[1] = secs;
            best_stats = stats;
        }
        check(&wls, "route_batch");
    }
    let m = BatchMeasurement {
        portfolio,
        sizes,
        n,
        instances: instances.len(),
        batch_seconds: best[1],
        sequential_seconds: best[0],
        instances_per_sec: instances.len() as f64 / best[1],
        speedup: best[0] / best[1],
        workers: best_stats.workers(),
        balance: best_stats.balance(),
        max_queue_wait_seconds: best_stats.max_queue_wait_seconds(),
        total_idle_seconds: best_stats.total_idle_seconds(),
    };
    eprintln!(
        "{portfolio:>8} batch {}  batch {:.3}s  sequential {:.3}s  {:.2} inst/s  speedup {:.3}  workers {}  balance {:.2}  queue-wait {:.4}s  idle {:.4}s",
        m.sizes, m.batch_seconds, m.sequential_seconds, m.instances_per_sec, m.speedup, m.workers, m.balance, m.max_queue_wait_seconds, m.total_idle_seconds
    );
    m
}

/// One subtree-cache dedup measurement: a repeated portfolio routed cold
/// (no cache) vs warm (primed [`SubtreeCache`], every instance hits).
#[derive(Debug, Clone)]
struct DedupMeasurement {
    /// Human-readable portfolio shape, e.g. `"3x250 x4 repeats"`.
    sizes: String,
    instances: usize,
    unique_regions: usize,
    cold_seconds: f64,
    warm_seconds: f64,
    cold_instances_per_sec: f64,
    warm_instances_per_sec: f64,
    speedup_warm_over_cold: f64,
    /// Hit rate over the timed warm reps, computed from the per-route
    /// [`RouteStats`](astdme_core::RouteStats) `cache_hits`/`cache_misses`
    /// counters rather than the cache's lifetime totals — so the number
    /// excludes the untimed prime pass and stays attributable per route.
    cache_hit_rate: f64,
}

/// The dedup gate: warm cached routing of a repeated portfolio must beat
/// cold uncached routing by at least this factor — a hit skips the merge
/// loop entirely, so the margin is wide.
const DEDUP_MIN_SPEEDUP: f64 = 1.5;

/// Measures the content-addressed subtree cache on a portfolio of
/// `DEDUP_UNIQUE` distinct instances at size `n`, each repeated
/// `DEDUP_REPEATS` times (interleaved). Instances are translated so their
/// bounding-box minimum corner sits exactly at the origin, which makes
/// the cached pipeline's normalization the exact identity — warm (cached)
/// and cold (uncached) outcomes are then bit-identical, and the binary
/// asserts so on every wirelength.
///
/// Cold routes through [`route_batch`] with no cache attached; warm
/// routes through [`route_batch_cached`] with a cache primed by one
/// untimed pass, so every timed lookup hits (asserted: zero misses across
/// the timed reps). Both paths are timed `DEDUP_REPS_TIMED` times in
/// alternating order and the minimum kept — the same discipline as
/// [`measure`]. The warm-over-cold throughput ratio is asserted
/// ≥ [`DEDUP_MIN_SPEEDUP`].
fn measure_dedup(n: usize) -> DedupMeasurement {
    const DEDUP_UNIQUE: usize = 3;
    const DEDUP_REPEATS: usize = 4;
    const DEDUP_REPS_TIMED: usize = 3;
    let distinct: Vec<Instance> = (0..DEDUP_UNIQUE)
        .map(|i| {
            let inst = instance_seeded(n, SEED.wrapping_add(0x1000 + i as u64));
            // Anchor at the origin: `a - a = +0.0`, so the cached
            // pipeline's translation normalization is the exact identity
            // and cached outcomes coincide with uncached ones bit for bit.
            let bb = inst.bounding_box();
            inst.translated(-bb.x0(), -bb.y0()).expect("finite")
        })
        .collect();
    let portfolio: Vec<Instance> = (0..DEDUP_REPEATS)
        .flat_map(|_| distinct.iter().cloned())
        .collect();
    let router = AstDme::new().with_engine(EngineConfig::fast());
    let cache = SubtreeCache::new(64);
    // Prime: one untimed cached pass; afterwards every distinct region is
    // resident, so the timed warm passes are all hits.
    let primed = route_batch_cached(&portfolio, &router, &cache);
    assert!(primed.iter().all(|r| r.is_ok()), "prime pass must route");
    let stats_before_timed = cache.stats();
    let mut best = [f64::INFINITY; 2]; // [cold, warm]
    let mut cold_wls: Vec<f64> = Vec::new();
    // Per-route cache counters summed over the timed warm reps; the
    // JSON `cache_hit_rate` comes from these, not `cache.stats()`.
    let (mut timed_hits, mut timed_misses) = (0u64, 0u64);
    for rep in 0..DEDUP_REPS_TIMED {
        let t0 = Instant::now();
        let cold = route_batch(&portfolio, &router);
        best[0] = best[0].min(t0.elapsed().as_secs_f64());
        let wls: Vec<f64> = cold
            .into_iter()
            .map(|out| out.expect("routes").report.wirelength())
            .collect();
        if rep == 0 {
            cold_wls = wls;
        } else {
            assert_eq!(cold_wls, wls, "cold routing must be deterministic");
        }

        let t0 = Instant::now();
        let warm = route_batch_cached(&portfolio, &router, &cache);
        best[1] = best[1].min(t0.elapsed().as_secs_f64());
        for (i, (out, &expected)) in warm.into_iter().zip(&cold_wls).enumerate() {
            let out = out.expect("routes");
            assert!(out.stats.cache_hit, "warm instance {i} must hit");
            timed_hits += out.stats.cache_hits;
            timed_misses += out.stats.cache_misses;
            let wl = out.report.wirelength();
            assert!(
                wl == expected,
                "dedup cache diverged on instance {i}: {wl} vs {expected}"
            );
        }
    }
    let timed = cache.stats();
    assert_eq!(
        timed.misses, stats_before_timed.misses,
        "primed cache must not miss during timed reps"
    );
    let m = DedupMeasurement {
        sizes: format!("{DEDUP_UNIQUE}x{n} x{DEDUP_REPEATS} repeats"),
        instances: portfolio.len(),
        unique_regions: DEDUP_UNIQUE,
        cold_seconds: best[0],
        warm_seconds: best[1],
        cold_instances_per_sec: portfolio.len() as f64 / best[0],
        warm_instances_per_sec: portfolio.len() as f64 / best[1],
        speedup_warm_over_cold: best[0] / best[1],
        cache_hit_rate: timed_hits as f64 / (timed_hits + timed_misses).max(1) as f64,
    };
    eprintln!(
        "   dedup {}  cold {:.3}s ({:.2} inst/s)  warm {:.3}s ({:.2} inst/s)  speedup {:.2}x  hit rate {:.3}",
        m.sizes,
        m.cold_seconds,
        m.cold_instances_per_sec,
        m.warm_seconds,
        m.warm_instances_per_sec,
        m.speedup_warm_over_cold,
        m.cache_hit_rate
    );
    assert!(
        m.speedup_warm_over_cold >= DEDUP_MIN_SPEEDUP,
        "subtree cache must beat cold routing by >= {DEDUP_MIN_SPEEDUP}x on a repeated \
         portfolio, measured {:.2}x",
        m.speedup_warm_over_cold
    );
    m
}

/// One incremental-ECO measurement: flushing a k-sink move batch through
/// a standing [`EcoSession`] vs a from-scratch route of the edited
/// instance.
#[derive(Debug, Clone)]
struct EcoMeasurement {
    n: usize,
    /// Sinks moved per flush.
    k: usize,
    /// Best single-flush latency (apply + invalidate + replay + splice).
    incremental_seconds: f64,
    /// Best from-scratch route of the same edited instance, same plan.
    scratch_seconds: f64,
    speedup: f64,
    /// Merge-script adoptions vs fresh merges in the fastest flush.
    adopted_merges: usize,
    fresh_merges: usize,
    replayed_rounds: usize,
}

/// The ECO gate: at k=1 on the larger instances (n ≥ 4000) a flush must
/// beat the from-scratch route by at least this factor — the sublinearity
/// claim of the incremental path, asserted in-binary like the dedup gate.
const ECO_MIN_SPEEDUP: f64 = 2.0;
const ECO_GATE_MIN_N: usize = 4000;

/// Measures one (n, k) cell of the ECO grid: a standing session routed
/// once (untimed), then alternating flushes that move k spread-out sinks
/// away and back — each flush is a k-move batch, and the best latency
/// over all timed flushes is kept, mirroring the best-of discipline of
/// [`measure`]. Every flush is asserted **bit-identical** (tree and audit
/// report) to a from-scratch route of the instance it lands on; the
/// from-scratch comparison time is itself the best of `ECO_REPS` runs.
fn measure_eco(n: usize, k: usize) -> EcoMeasurement {
    const ECO_REPS: usize = 4;
    let inst = instance_seeded(n, SEED ^ 0x0EC0);
    let router = AstDme::new().with_engine(EngineConfig::fast());
    let plan = router.plan();

    // k spread-out sinks, each displaced by a fixed offset — far enough
    // to perturb the local merge neighborhood, near enough to stay an
    // incremental edit.
    let step = n / k;
    let targets: Vec<usize> = (0..k).map(|i| i * step).collect();
    let away: Vec<EcoEdit> = targets
        .iter()
        .map(|&s| {
            let p = inst.sinks()[s].pos;
            EcoEdit::Move {
                sink: s,
                to: Point::new(p.x + 370.0, p.y - 240.0),
            }
        })
        .collect();
    let back: Vec<EcoEdit> = targets
        .iter()
        .map(|&s| EcoEdit::Move {
            sink: s,
            to: inst.sinks()[s].pos,
        })
        .collect();
    let mut edited_sinks = inst.sinks().to_vec();
    for edit in &away {
        if let EcoEdit::Move { sink, to } = *edit {
            edited_sinks[sink].pos = to;
        }
    }
    let edited = Instance::new(
        edited_sinks,
        inst.groups().clone(),
        *inst.rc(),
        inst.source(),
    )
    .expect("valid edited instance");

    // From-scratch references for both endpoints of the flush cycle.
    let want_edited = router.route_traced(&edited).expect("routes");
    let want_home = router.route_traced(&inst).expect("routes");
    let mut scratch = f64::INFINITY;
    for _ in 0..ECO_REPS {
        let t0 = Instant::now();
        let out = router.route_traced(&edited).expect("routes");
        scratch = scratch.min(t0.elapsed().as_secs_f64());
        assert!(
            out.report.wirelength() == want_edited.report.wirelength(),
            "from-scratch reroute must be deterministic at n={n}"
        );
    }

    let mut session = EcoSession::new(&inst, plan).expect("routes");
    let mut incremental = f64::INFINITY;
    let mut best_flush = session.last_flush();
    for rep in 0..ECO_REPS {
        for (edits, want) in [(&away, &want_edited), (&back, &want_home)] {
            for edit in edits.iter() {
                session.queue(*edit);
            }
            let t0 = Instant::now();
            let out = session.flush().expect("flushes");
            let secs = t0.elapsed().as_secs_f64();
            assert!(
                out.tree == want.tree && out.report == want.report,
                "ECO flush diverged from from-scratch at n={n} k={k} rep={rep}"
            );
            let fs = session.last_flush();
            assert!(
                !fs.full_reroute,
                "ECO flush fell back to a full reroute at n={n} k={k} rep={rep}"
            );
            if secs < incremental {
                incremental = secs;
                best_flush = fs;
            }
        }
    }

    let m = EcoMeasurement {
        n,
        k,
        incremental_seconds: incremental,
        scratch_seconds: scratch,
        speedup: scratch / incremental,
        adopted_merges: best_flush.adopted_merges,
        fresh_merges: best_flush.fresh_merges,
        replayed_rounds: best_flush.replayed_rounds,
    };
    eprintln!(
        "n={n:>6} eco k={k:<3} flush {:.4}s  scratch {:.4}s  speedup {:.2}x  adopted {} fresh {}",
        m.incremental_seconds, m.scratch_seconds, m.speedup, m.adopted_merges, m.fresh_merges
    );
    if k == 1 && n >= ECO_GATE_MIN_N {
        assert!(
            m.speedup >= ECO_MIN_SPEEDUP,
            "incremental ECO flush must beat from-scratch by >= {ECO_MIN_SPEEDUP}x at \
             k=1, n={n}; measured {:.2}x",
            m.speedup
        );
    }
    m
}

/// One latency measurement: what the stream and the persistent pool buy
/// beyond batch throughput.
#[derive(Debug, Clone)]
struct LatencyMeasurement {
    /// Human-readable size mix of the streamed portfolio.
    sizes: String,
    /// Best wall-clock from stream construction to the first yielded
    /// outcome.
    time_to_first_result_seconds: f64,
    /// Best wall-clock to drain the whole stream.
    stream_drain_seconds: f64,
    /// Best wall-clock for the batch barrier over the same portfolio.
    batch_barrier_seconds: f64,
    /// How much sooner the first outcome is actionable via the stream.
    barrier_over_first_result: f64,
    /// Small batches routed per timed pass of the pool-reuse comparison.
    pool_reuse_calls: usize,
    /// Spawn-per-call baseline time over persistent-pool time for the
    /// same sequence of small batches (>= 1.0, asserted in-binary).
    pool_reuse_speedup: f64,
    /// Pool threads alive after the measurement — reuse means this stays
    /// at the fan-out width instead of growing per call.
    pool_threads: usize,
    /// Variants routed by the barrier-free Monte Carlo sweep.
    sweep_variants: usize,
    /// Barrier-free sweep throughput (variants per second).
    sweep_variants_per_sec: f64,
    /// Worst submission-to-start latency across the fastest barrier rep.
    max_queue_wait_seconds: f64,
    /// Total non-routing worker time of the fastest barrier rep.
    total_idle_seconds: f64,
}

/// The pre-pool shape resurrected as a baseline: route one batch by
/// spawning scoped threads for this call only and joining them before
/// returning — the per-call spawn/join cost the persistent pool deletes.
/// Same claim-a-slot scheduling as the fleet barrier, so the only
/// difference under test is where the worker threads come from.
fn route_batch_spawn_per_call(instances: &[Instance], router: &AstDme, threads: usize) -> Vec<f64> {
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, f64)>> = Mutex::new(Vec::with_capacity(instances.len()));
    let work = |_worker: usize| loop {
        let idx = cursor.fetch_add(1, Ordering::Relaxed);
        if idx >= instances.len() {
            break;
        }
        let wl = router
            .route_traced(&instances[idx])
            .expect("routes")
            .report
            .wirelength();
        collected
            .lock()
            .expect("no panics hold this lock")
            .push((idx, wl));
    };
    // astdme-lint: allow(thread-spawn): harness contrasts raw OS threads against astdme_par's pooled fan-out
    std::thread::scope(|s| {
        let work = &work;
        for w in 1..threads {
            s.spawn(move || work(w));
        }
        work(0);
    });
    let mut out = vec![0.0f64; instances.len()];
    for (idx, wl) in collected.into_inner().expect("no panics hold this lock") {
        out[idx] = wl;
    }
    out
}

/// Measures the `latency` section: time-to-first-result of
/// [`route_stream`] vs the batch barrier on the skewed portfolio (the
/// shape where a barrier wastes the most consumer time — the stream
/// yields the eight small outcomes while the n=4000 instance is still in
/// flight on multicore, and still beats the barrier serially because the
/// first outcome lands before the remaining eight route), the
/// persistent-pool reuse speedup over spawn-per-call on repeated small
/// batches, and the barrier-free Monte Carlo sweep throughput.
///
/// Asserts in-binary: stream wirelengths bit-equal to the sequential
/// reference, `time_to_first_result < batch_barrier_seconds`, and
/// `pool_reuse_speedup >= 1.0`.
fn measure_latency(quick: bool) -> LatencyMeasurement {
    const LAT_REPS: usize = 3;
    const LARGE_N: usize = 4000;
    const SMALL_N: usize = 250;
    const SMALL_COUNT: usize = 8;
    let router: Arc<AstDme> = Arc::new(AstDme::new().with_engine(EngineConfig::fast()));
    let mut instances = vec![instance_seeded(LARGE_N, SEED ^ 0x51)];
    instances.extend(
        (0..SMALL_COUNT).map(|i| instance_seeded(SMALL_N, SEED.wrapping_add(101 + i as u64))),
    );

    // Reference wirelengths (and warmup) from one sequential pass, which
    // also calibrates the cost model for the barrier's schedule — the
    // same protocol as `measure_portfolio`.
    let mut model = CostModel::new();
    let reference: Vec<f64> = instances
        .iter()
        .map(|inst| {
            let out = router.route_traced(inst).expect("routes");
            model.observe(inst, &out.stats);
            out.report.wirelength()
        })
        .collect();
    let plan = BatchPlan::with_model(&instances, &model);
    let check = |wls: &[f64], label: &str| {
        for (i, (&wl, &expected)) in wls.iter().zip(&reference).enumerate() {
            assert!(
                wl == expected,
                "{label} diverged on skewed portfolio instance {i}: {wl} vs {expected}"
            );
        }
    };

    let mut best_first = f64::INFINITY;
    let mut best_drain = f64::INFINITY;
    let mut best_barrier = f64::INFINITY;
    let mut best_stats = astdme_core::StealStats::default();
    for _rep in 0..LAT_REPS {
        let t0 = Instant::now();
        let stream = route_stream(instances.clone(), router.clone(), StreamPolicy::new());
        let mut first = f64::INFINITY;
        let mut wls = vec![0.0f64; instances.len()];
        for (seen, (idx, result)) in stream.enumerate() {
            if seen == 0 {
                first = t0.elapsed().as_secs_f64();
            }
            wls[idx] = result.expect("routes").report.wirelength();
        }
        let drain = t0.elapsed().as_secs_f64();
        check(&wls, "route_stream");
        best_first = best_first.min(first);
        best_drain = best_drain.min(drain);

        let t0 = Instant::now();
        let (outcomes, stats) = plan.route_with_stats(&instances, router.as_ref());
        let secs = t0.elapsed().as_secs_f64();
        let wls: Vec<f64> = outcomes
            .into_iter()
            .map(|out| out.expect("routes").report.wirelength())
            .collect();
        check(&wls, "batch barrier");
        if secs < best_barrier {
            best_barrier = secs;
            best_stats = stats;
        }
    }
    assert!(
        best_first < best_barrier,
        "the stream's first result ({best_first:.4}s) must land before the batch barrier \
         returns ({best_barrier:.4}s)"
    );

    // Pool reuse vs spawn-per-call on repeated small batches, under an
    // explicit four-thread override so the fan-out engages (and costs
    // three spawns per call in the baseline) even on a single-core
    // machine. The batches are tiny on purpose: per-call dispatch is the
    // quantity under test, so routing work is kept near the OS thread
    // spawn/join cost rather than drowning it.
    const POOL_CALLS: usize = 64;
    const POOL_BATCH: usize = 4;
    const POOL_N: usize = 16;
    let small: Vec<Instance> = (0..POOL_BATCH)
        .map(|i| instance_seeded(POOL_N, SEED.wrapping_add(0x2000 + i as u64)))
        .collect();
    astdme_par::set_thread_override(NonZeroUsize::new(4));
    let threads = astdme_par::effective_threads();
    let small_reference: Vec<f64> = route_batch(&small, router.as_ref())
        .into_iter()
        .map(|out| out.expect("routes").report.wirelength())
        .collect();
    let mut best_spawn = f64::INFINITY;
    let mut best_pool = f64::INFINITY;
    for _rep in 0..LAT_REPS {
        let t0 = Instant::now();
        for _ in 0..POOL_CALLS {
            let wls = route_batch_spawn_per_call(&small, router.as_ref(), threads);
            assert_eq!(wls, small_reference, "spawn-per-call baseline diverged");
        }
        best_spawn = best_spawn.min(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        for _ in 0..POOL_CALLS {
            let wls: Vec<f64> = route_batch(&small, router.as_ref())
                .into_iter()
                .map(|out| out.expect("routes").report.wirelength())
                .collect();
            assert_eq!(wls, small_reference, "pooled batch diverged");
        }
        best_pool = best_pool.min(t0.elapsed().as_secs_f64());
    }
    astdme_par::set_thread_override(None);
    let pool_reuse_speedup = best_spawn / best_pool;
    assert!(
        pool_reuse_speedup >= 1.0,
        "the persistent pool must not lose to spawn-per-call on repeated small batches; \
         measured {pool_reuse_speedup:.3}x over {POOL_CALLS} calls"
    );

    // Barrier-free Monte Carlo sweep throughput on a small nominal
    // instance — workers stream variants through the pool with no chunk
    // barriers, so this rate has no straggler-wait component.
    let sweep_variants = if quick { 64 } else { 192 };
    let nominal = instance_seeded(SMALL_N, SEED ^ 0x0AB5);
    let spec = PerturbationSpec::new(SEED)
        .with_position_jitter(300.0)
        .with_load_jitter(0.2)
        .with_rc_jitter(0.1);
    let config = SweepConfig::new(sweep_variants);
    let mut best_sweep = f64::INFINITY;
    for _rep in 0..LAT_REPS {
        let t0 = Instant::now();
        let report = sweep(&nominal, &spec, &config, router.as_ref()).expect("sweeps");
        best_sweep = best_sweep.min(t0.elapsed().as_secs_f64());
        assert_eq!(
            report.succeeded, sweep_variants,
            "sweep variants must route"
        );
    }

    let m = LatencyMeasurement {
        sizes: format!("1x{LARGE_N}+{SMALL_COUNT}x{SMALL_N}"),
        time_to_first_result_seconds: best_first,
        stream_drain_seconds: best_drain,
        batch_barrier_seconds: best_barrier,
        barrier_over_first_result: best_barrier / best_first,
        pool_reuse_calls: POOL_CALLS,
        pool_reuse_speedup,
        pool_threads: astdme_par::pool_threads(),
        sweep_variants,
        sweep_variants_per_sec: sweep_variants as f64 / best_sweep,
        max_queue_wait_seconds: best_stats.max_queue_wait_seconds(),
        total_idle_seconds: best_stats.total_idle_seconds(),
    };
    eprintln!(
        " latency {}  first {:.4}s  drain {:.4}s  barrier {:.4}s ({:.2}x)  pool-reuse {:.3}x (spawn {:.4}s vs pool {:.4}s over {POOL_CALLS} calls)  sweep {:.1}/s  pool threads {}",
        m.sizes,
        m.time_to_first_result_seconds,
        m.stream_drain_seconds,
        m.batch_barrier_seconds,
        m.barrier_over_first_result,
        m.pool_reuse_speedup,
        best_spawn,
        best_pool,
        m.sweep_variants_per_sec,
        m.pool_threads
    );
    m
}

fn to_json(
    measurements: &[Measurement],
    allocs: &[AllocMeasurement],
    par: &[ParMeasurement],
    batch: &[BatchMeasurement],
    dedup: &[DedupMeasurement],
    eco: &[EcoMeasurement],
    latency: &[LatencyMeasurement],
) -> String {
    let items: Vec<String> = measurements
        .iter()
        .map(|m| {
            json::object(
                &[
                    json::field("n", format!("{}", m.n)),
                    json::field("planner", json::quote(m.planner)),
                    json::field("order", json::quote(m.order)),
                    json::field("seconds", json::number(m.seconds)),
                    json::field("merges_per_sec", json::number(m.merges_per_sec)),
                    json::field("wirelength_um", json::number(m.wirelength_um)),
                ],
                4,
            )
        })
        .collect();
    // Summary: per (n, order) speedup of incremental over from-scratch.
    let mut summaries = Vec::new();
    let mut sizes: Vec<usize> = measurements.iter().map(|m| m.n).collect();
    sizes.sort_unstable();
    sizes.dedup();
    for &n in &sizes {
        for order in ["greedy", "multi_merge"] {
            let find = |planner: &str| {
                measurements
                    .iter()
                    .find(|m| m.n == n && m.order == order && m.planner == planner)
                    .map(|m| m.seconds)
            };
            if let (Some(inc), Some(scratch)) = (find("incremental"), find("from_scratch")) {
                summaries.push(json::object(
                    &[
                        json::field("n", format!("{n}")),
                        json::field("order", json::quote(order)),
                        json::field("speedup", json::number(scratch / inc)),
                    ],
                    4,
                ));
            }
        }
    }
    // Allocation counts: deterministic, CI-regressable.
    let alloc_items: Vec<String> = allocs
        .iter()
        .map(|m| {
            json::object(
                &[
                    json::field("n", format!("{}", m.n)),
                    json::field("planner", json::quote("incremental")),
                    json::field("order", json::quote(m.order)),
                    json::field("engine", json::quote("fast")),
                    json::field("total_allocs", format!("{}", m.total_allocs)),
                    json::field("allocs_per_merge", json::number(m.allocs_per_merge)),
                ],
                4,
            )
        })
        .collect();
    // Parallel-vs-serial candidate-pair expansion (parallel feature only).
    let par_items: Vec<String> = par
        .iter()
        .map(|m| {
            json::object(
                &[
                    json::field("n", format!("{}", m.n)),
                    json::field("planner", json::quote("incremental")),
                    json::field("order", json::quote("greedy")),
                    json::field("engine", json::quote("thorough")),
                    json::field("expansion", json::quote(m.expansion)),
                    json::field("threads", format!("{}", m.threads)),
                    json::field("seconds", json::number(m.seconds)),
                    json::field("wirelength_um", json::number(m.wirelength_um)),
                ],
                4,
            )
        })
        .collect();
    let mut par_summaries = Vec::new();
    for &n in &sizes {
        let find = |expansion: &str| {
            par.iter()
                .find(|m| m.n == n && m.expansion == expansion)
                .map(|m| m.seconds)
        };
        if let (Some(p), Some(s)) = (find("parallel"), find("serial")) {
            par_summaries.push(json::object(
                &[
                    json::field("n", format!("{n}")),
                    json::field("speedup", json::number(s / p)),
                ],
                4,
            ));
        }
    }
    // Fleet-layer throughput: route_batch vs the sequential loop.
    let batch_items: Vec<String> = batch
        .iter()
        .map(|m| {
            json::object(
                &[
                    json::field("portfolio", json::quote(m.portfolio)),
                    json::field("sizes", json::quote(&m.sizes)),
                    json::field("n", format!("{}", m.n)),
                    json::field("instances", format!("{}", m.instances)),
                    json::field("router", json::quote("AST-DME")),
                    json::field("engine", json::quote("fast")),
                    json::field("batch_seconds", json::number(m.batch_seconds)),
                    json::field("sequential_seconds", json::number(m.sequential_seconds)),
                    json::field("instances_per_sec", json::number(m.instances_per_sec)),
                    json::field("speedup", json::number(m.speedup)),
                    json::field("workers", format!("{}", m.workers)),
                    json::field("balance_max_over_min_busy", json::number(m.balance)),
                    json::field(
                        "max_queue_wait_seconds",
                        json::number(m.max_queue_wait_seconds),
                    ),
                    json::field("total_idle_seconds", json::number(m.total_idle_seconds)),
                    // Asserted inside the measurement (the run aborts on a
                    // mismatch); recorded so CI can grep the guarantee.
                    json::field("wirelength_bit_equal", "true"),
                ],
                4,
            )
        })
        .collect();
    // Subtree-cache dedup: warm (primed cache) vs cold (uncached).
    let dedup_items: Vec<String> = dedup
        .iter()
        .map(|m| {
            json::object(
                &[
                    json::field("sizes", json::quote(&m.sizes)),
                    json::field("instances", format!("{}", m.instances)),
                    json::field("unique_regions", format!("{}", m.unique_regions)),
                    json::field("router", json::quote("AST-DME")),
                    json::field("engine", json::quote("fast")),
                    json::field("cold_seconds", json::number(m.cold_seconds)),
                    json::field("warm_seconds", json::number(m.warm_seconds)),
                    json::field(
                        "cold_instances_per_sec",
                        json::number(m.cold_instances_per_sec),
                    ),
                    json::field(
                        "warm_instances_per_sec",
                        json::number(m.warm_instances_per_sec),
                    ),
                    json::field(
                        "speedup_warm_over_cold",
                        json::number(m.speedup_warm_over_cold),
                    ),
                    json::field("cache_hit_rate", json::number(m.cache_hit_rate)),
                    // Both asserted inside the measurement (the run aborts
                    // on a mismatch or a sub-threshold speedup); recorded
                    // so CI can grep the guarantee.
                    json::field("wirelength_bit_equal", "true"),
                ],
                4,
            )
        })
        .collect();
    // Incremental ECO: k-sink flush vs from-scratch reroute.
    let eco_items: Vec<String> = eco
        .iter()
        .map(|m| {
            json::object(
                &[
                    json::field("n", format!("{}", m.n)),
                    json::field("k", format!("{}", m.k)),
                    json::field("router", json::quote("AST-DME")),
                    json::field("engine", json::quote("fast")),
                    json::field("incremental_seconds", json::number(m.incremental_seconds)),
                    json::field("scratch_seconds", json::number(m.scratch_seconds)),
                    json::field("speedup_incremental_vs_scratch", json::number(m.speedup)),
                    json::field("adopted_merges", format!("{}", m.adopted_merges)),
                    json::field("fresh_merges", format!("{}", m.fresh_merges)),
                    json::field("replayed_rounds", format!("{}", m.replayed_rounds)),
                    // Asserted inside the measurement on every flush (the
                    // run aborts on a tree or report mismatch); recorded so
                    // CI can grep the guarantee.
                    json::field("wirelength_bit_equal", "true"),
                ],
                4,
            )
        })
        .collect();
    // Stream/pool latency: time-to-first-result, pool reuse, sweep rate.
    let latency_items: Vec<String> = latency
        .iter()
        .map(|m| {
            json::object(
                &[
                    json::field("portfolio", json::quote("skewed")),
                    json::field("sizes", json::quote(&m.sizes)),
                    json::field("router", json::quote("AST-DME")),
                    json::field("engine", json::quote("fast")),
                    json::field(
                        "time_to_first_result_seconds",
                        json::number(m.time_to_first_result_seconds),
                    ),
                    json::field("stream_drain_seconds", json::number(m.stream_drain_seconds)),
                    json::field(
                        "batch_barrier_seconds",
                        json::number(m.batch_barrier_seconds),
                    ),
                    json::field(
                        "barrier_over_first_result",
                        json::number(m.barrier_over_first_result),
                    ),
                    json::field("pool_reuse_calls", format!("{}", m.pool_reuse_calls)),
                    json::field("pool_reuse_speedup", json::number(m.pool_reuse_speedup)),
                    json::field("pool_threads", format!("{}", m.pool_threads)),
                    json::field("sweep_variants", format!("{}", m.sweep_variants)),
                    json::field(
                        "sweep_variants_per_sec",
                        json::number(m.sweep_variants_per_sec),
                    ),
                    json::field(
                        "max_queue_wait_seconds",
                        json::number(m.max_queue_wait_seconds),
                    ),
                    json::field("total_idle_seconds", json::number(m.total_idle_seconds)),
                    // All three latency guarantees are asserted inside the
                    // measurement (bit-equal wirelengths, first result
                    // before the barrier, pool reuse >= 1.0); recorded so
                    // CI can grep them.
                    json::field("wirelength_bit_equal", "true"),
                ],
                4,
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"scaling\",\n  \"groups\": {GROUPS},\n  \"seed\": {SEED},\n  \"measurements\": {},\n  \"speedups\": {},\n  \"allocs_per_merge\": {},\n  \"parallel_expansion\": {},\n  \"parallel_speedups\": {},\n  \"batch_throughput\": {},\n  \"dedup\": {},\n  \"eco\": {},\n  \"latency\": {}\n}}\n",
        json::array(&items, 2),
        json::array(&summaries, 2),
        json::array(&alloc_items, 2),
        json::array(&par_items, 2),
        json::array(&par_summaries, 2),
        json::array(&batch_items, 2),
        json::array(&dedup_items, 2),
        json::array(&eco_items, 2),
        json::array(&latency_items, 2)
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_scaling.json".to_string());
    let sizes: Vec<usize> = match args.iter().position(|a| a == "--sizes") {
        Some(i) => args
            .get(i + 1)
            .expect("--sizes needs a comma-separated list")
            .split(',')
            .map(|s| s.trim().parse().expect("size must be an integer"))
            .collect(),
        None if quick => vec![250],
        None => DEFAULT_SIZES.to_vec(),
    };
    let alloc_budget: Option<f64> = args.iter().position(|a| a == "--alloc-budget").map(|i| {
        args.get(i + 1)
            .expect("--alloc-budget needs a number")
            .parse()
            .expect("alloc budget must be a number")
    });

    let mut measurements = Vec::new();
    let mut alloc_measurements = Vec::new();
    let mut par_measurements = Vec::new();
    for &n in &sizes {
        let inst = instance(n);
        measurements.extend(measure(n, &inst));
        alloc_measurements.extend(measure_allocs(n, &inst));
        par_measurements.extend(measure_parallel(n, &inst));
    }
    // Fleet throughput: a uniform portfolio at the smallest requested
    // size (the batch-vs-sequential comparison is about the fan-out
    // layer, not the per-instance cost the sections above already track)
    // plus the fixed skewed portfolio that exercises the cost-model /
    // work-stealing schedule.
    let batch_measurements = vec![
        measure_batch(sizes.iter().copied().min().expect("at least one size")),
        measure_batch_skewed(),
    ];
    // Subtree-cache dedup at the smallest size: the warm-vs-cold contrast
    // is about the cache layer, not per-instance cost.
    let dedup_measurements = vec![measure_dedup(
        sizes.iter().copied().min().expect("at least one size"),
    )];
    // Incremental ECO grid: move k of n sinks per flush. Quick mode keeps
    // the single smallest cell so CI smoke still greps the section.
    let eco_ks: &[usize] = if quick { &[1] } else { &[1, 8, 64] };
    let mut eco_measurements = Vec::new();
    for &n in &sizes {
        for &k in eco_ks {
            if k < n {
                eco_measurements.push(measure_eco(n, k));
            }
        }
    }
    // Stream/pool latency: runs last so the pool-thread count it records
    // reflects a fully warmed process.
    let latency_measurements = vec![measure_latency(quick)];
    let doc = to_json(
        &measurements,
        &alloc_measurements,
        &par_measurements,
        &batch_measurements,
        &dedup_measurements,
        &eco_measurements,
        &latency_measurements,
    );
    std::fs::write(&out_path, &doc).expect("write BENCH_scaling.json");
    eprintln!("wrote {out_path}");

    if let Some(budget) = alloc_budget {
        for m in &alloc_measurements {
            assert!(
                m.allocs_per_merge <= budget,
                "allocs/merge over budget at n={} {}: {:.2} > {budget}",
                m.n,
                m.order,
                m.allocs_per_merge
            );
        }
        eprintln!("alloc budget ok: all measurements <= {budget} allocs/merge");
    }

    // Human-readable summary on stdout.
    println!("| n | order | planner | seconds | merges/s | wirelength (um) |");
    println!("|---|-------|---------|---------|----------|-----------------|");
    for m in &measurements {
        println!(
            "| {} | {} | {} | {:.3} | {:.0} | {:.0} |",
            m.n, m.order, m.planner, m.seconds, m.merges_per_sec, m.wirelength_um
        );
    }
    if !par_measurements.is_empty() {
        println!();
        println!("| n | expansion | threads | seconds | wirelength (um) |");
        println!("|---|-----------|---------|---------|-----------------|");
        for m in &par_measurements {
            println!(
                "| {} | {} | {} | {:.3} | {:.0} |",
                m.n, m.expansion, m.threads, m.seconds, m.wirelength_um
            );
        }
    }
    println!();
    println!(
        "| portfolio | sizes | batch (s) | sequential (s) | inst/s | speedup | workers | balance |"
    );
    println!(
        "|-----------|-------|-----------|----------------|--------|---------|---------|---------|"
    );
    for m in &batch_measurements {
        println!(
            "| {} | {} | {:.3} | {:.3} | {:.2} | {:.3} | {} | {:.2} |",
            m.portfolio,
            m.sizes,
            m.batch_seconds,
            m.sequential_seconds,
            m.instances_per_sec,
            m.speedup,
            m.workers,
            m.balance
        );
    }
    println!();
    println!("| dedup portfolio | cold inst/s | warm inst/s | speedup | hit rate |");
    println!("|-----------------|-------------|-------------|---------|----------|");
    for m in &dedup_measurements {
        println!(
            "| {} | {:.2} | {:.2} | {:.2} | {:.3} |",
            m.sizes,
            m.cold_instances_per_sec,
            m.warm_instances_per_sec,
            m.speedup_warm_over_cold,
            m.cache_hit_rate
        );
    }
    println!();
    println!("| n | k moved | flush (s) | scratch (s) | speedup | adopted | fresh |");
    println!("|---|---------|-----------|-------------|---------|---------|-------|");
    for m in &eco_measurements {
        println!(
            "| {} | {} | {:.4} | {:.4} | {:.2} | {} | {} |",
            m.n,
            m.k,
            m.incremental_seconds,
            m.scratch_seconds,
            m.speedup,
            m.adopted_merges,
            m.fresh_merges
        );
    }
    println!();
    println!(
        "| latency portfolio | first (s) | drain (s) | barrier (s) | pool reuse | sweep var/s |"
    );
    println!(
        "|-------------------|-----------|-----------|-------------|------------|-------------|"
    );
    for m in &latency_measurements {
        println!(
            "| {} | {:.4} | {:.4} | {:.4} | {:.3} | {:.1} |",
            m.sizes,
            m.time_to_first_result_seconds,
            m.stream_drain_seconds,
            m.batch_barrier_seconds,
            m.pool_reuse_speedup,
            m.sweep_variants_per_sec
        );
    }
}
