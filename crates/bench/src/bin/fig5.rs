//! Regenerates **Figure 5 / Ch. V.E instance 2** of the paper: merging two
//! subtrees that share *two* groups whose feasible merging regions do not
//! intersect, requiring wire sneaking (Eqs. 5.1–5.3).
//!
//! We build the situation at the engine level — Ta & Td from group 1,
//! Tb & Te from group 2, with a deliberate imbalance so the two groups'
//! δ-windows conflict — and show the engine resolves it by re-balancing a
//! child (the γ detour), with the audit confirming both groups end exactly
//! balanced.

use astdme_core::{
    audit, DelayModel, EngineConfig, GroupId, Groups, Instance, MergeForest, Point, RcParams, Sink,
};

fn main() {
    // Sinks a, d in group 1; b, e in group 2 (the figure's labels), placed
    // asymmetrically so the pairwise offsets disagree.
    let sinks = vec![
        Sink::new(Point::new(0.0, 0.0), 1e-14),      // a  (G1)
        Sink::new(Point::new(1200.0, 0.0), 4e-14),   // b  (G2)
        Sink::new(Point::new(5000.0, 300.0), 5e-14), // d  (G1)
        Sink::new(Point::new(6400.0, 0.0), 1e-14),   // e  (G2)
    ];
    let inst = Instance::new(
        sinks,
        Groups::from_assignments(vec![0, 1, 0, 1], 2).expect("two groups"),
        RcParams::default(),
        Point::new(3200.0, 4000.0),
    )
    .expect("valid instance");
    let model = DelayModel::elmore(*inst.rc());

    // Reproduce the figure's merge order exactly: Tc = merge(a, b),
    // Tf = merge(d, e), then Tg = merge(Tc, Tf). The last merge shares two
    // groups; the general (unfused) machinery handles the conflict with
    // wire sneaking, as in Eqs. (5.1)-(5.3).
    let cfg = EngineConfig {
        fuse_groups: false,
        ..EngineConfig::default()
    };
    let mut forest = MergeForest::for_instance_with_model(&inst, model, cfg);
    let leaves = forest.leaves();
    let c = forest.merge(leaves[0], leaves[1]);
    let f = forest.merge(leaves[2], leaves[3]);
    let g = forest.merge(c, f);
    let tree = forest.embed(g, inst.source());
    let report = audit(&tree, &inst, &model);

    println!("Figure 5 — partially shared groups, instance 2 (wire sneaking)\n");
    println!("Merge Tc = a(G1) x b(G2); Tf = d(G1) x e(G2); Tg = Tc x Tf.");
    for cand in forest.candidates(g).iter().take(1) {
        let r1 = cand.delays.range(GroupId(0)).expect("G1 present");
        let r2 = cand.delays.range(GroupId(1)).expect("G2 present");
        println!(
            "Root bookkeeping: G1 delay {:.3} ps (spread {:.2e} ps), G2 delay {:.3} ps (spread {:.2e} ps)",
            r1.lo * 1e12,
            r1.spread() * 1e12,
            r2.lo * 1e12,
            r2.spread() * 1e12
        );
    }
    println!(
        "Snaking detour (the paper's gamma): {:.1} um of {:.1} um total",
        tree.total_snaking(),
        tree.total_wirelength()
    );
    println!(
        "Audited intra-group skew: G1 = {:.3e} ps, G2 = {:.3e} ps; inter-group offset = {:.2} ps",
        report.group_spreads()[0] * 1e12,
        report.group_spreads()[1] * 1e12,
        report.global_skew() * 1e12,
    );
    assert!(
        report.max_intra_group_skew() < 1e-15,
        "both shared groups must end exactly balanced"
    );
    assert_eq!(forest.residual(), 0.0, "no best-effort fallback needed");
}
