//! Benchmark harness regenerating every table and figure of Kim (2006),
//! plus the workspace's performance tracker.
//!
//! The binaries (`table1`, `table2`, `fig1`, `fig2`, `fig5`, `ablation`)
//! print the corresponding experiment as a markdown table; the Criterion
//! benches (`tables`, `figures`, `ablation`) measure the runtimes. This
//! library holds the shared experiment runner.
//!
//! The **`scaling`** binary is the perf trajectory: it routes synthetic
//! intermingled instances at n ∈ {250, 1000, 4000, 16000} under both the
//! incremental `MergePlanner` driver and the from-scratch reference
//! driver (greedy and multi-merge orders), asserts both produce identical
//! wirelength, and writes `BENCH_scaling.json` (wall-clock, merges/sec,
//! wirelength, per-size speedups, and the `batch_throughput` section —
//! instances/sec through `astdme_core::route_batch` vs a sequential loop)
//! at the repo root. CI smoke-runs it at n = 250 (`--quick`); regenerate
//! the full file with
//! `cargo run --release -p astdme_bench --bin scaling` after touching the
//! merge loop, and compare against the committed numbers before merging.
//!
//! The experiment runner itself drives the instance portfolios through
//! the fleet layer (`route_batch`), so tables, examples and benches share
//! one code path and take their timings from the pipeline's per-stage
//! stats rather than external stopwatches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The workspace's JSON helpers, re-exported for the harness binaries.
///
/// This used to be a second hand-rolled writer; it is now a thin alias of
/// [`astdme_json`], so the bench outputs inherit the same escaping and the
/// same `1e999` policy for infinite values as the instance files.
pub use astdme_json as json;

use astdme_core::{route_batch, AstDme, ExtBst, Instance, RouteOutcome};
use astdme_instances::{partition, r_benchmark, Placement, RBench};

/// The global / intra-group skew bound used throughout the paper's
/// evaluation (10 ps).
pub const PAPER_BOUND: f64 = 10e-12;

/// Group counts evaluated per circuit in Tables I and II.
pub const GROUP_COUNTS: [usize; 4] = [4, 6, 8, 10];

/// One row of Table I / Table II.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name (`r1` … `r5`).
    pub circuit: String,
    /// Number of sinks.
    pub sinks: usize,
    /// Number of sink groups (1 for the EXT-BST baseline row).
    pub groups: usize,
    /// Algorithm label.
    pub algorithm: String,
    /// Total routed wirelength (µm).
    pub wirelength: f64,
    /// Reduction vs. the circuit's EXT-BST baseline (fraction; negative
    /// means more wire).
    pub reduction: f64,
    /// Maximum skew over all sink pairs, in ps (the paper's by-product
    /// inter-group offsets for AST rows).
    pub max_skew_ps: f64,
    /// Wall-clock routing time in seconds: the pipeline's own per-stage
    /// accounting (group + merge + embed + repair, audit excluded). The
    /// group-count portfolio routes through `route_batch`, so on a
    /// multicore host rows of one circuit route concurrently and their
    /// wall-clocks include contention — treat this column as indicative;
    /// the Criterion benches are the runtime measurement.
    pub cpu_s: f64,
}

/// Which partitioner a table uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionMode {
    /// Rectangle-box clusters (Table I).
    Clustered,
    /// Random intermingled assignment (Table II).
    Intermingled,
}

impl PartitionMode {
    fn apply(self, p: &Placement, k: usize, seed: u64) -> Instance {
        match self {
            PartitionMode::Clustered => partition::clustered(p, k, seed),
            PartitionMode::Intermingled => partition::intermingled(p, k, seed),
        }
        .expect("synthetic partitions are valid")
    }
}

/// Builds one [`Row`] from a traced routing outcome: wirelength, skew and
/// per-stage wall-clock all come from the pipeline's own accounting
/// instead of an external timer and a second audit.
fn row_from(
    p: &Placement,
    groups: usize,
    algorithm: &str,
    out: &RouteOutcome,
    baseline: f64,
) -> Row {
    Row {
        circuit: p.name.clone(),
        sinks: p.sinks.len(),
        groups,
        algorithm: algorithm.to_string(),
        wirelength: out.report.wirelength(),
        reduction: 1.0 - out.report.wirelength() / baseline,
        max_skew_ps: out.report.global_skew() * 1e12,
        cpu_s: out.stats.route_seconds(),
    }
}

/// Runs one circuit of a table: the EXT-BST baseline followed by AST-DME
/// at each group count, all over the same placement.
///
/// Following the paper's comparison, both algorithms operate at the same
/// 10 ps bound — EXT-BST globally, AST-DME per group (with inter-group
/// skew unconstrained). The group-count portfolio routes through the
/// fleet layer ([`route_batch`]) — the same code path `examples/fleet.rs`
/// and the batch-throughput bench drive — so timing comes from the
/// pipeline's per-stage stats, not a hand-held stopwatch.
pub fn run_circuit(bench: RBench, mode: PartitionMode, seed: u64) -> Vec<Row> {
    let placement = r_benchmark(bench, seed);
    let mut rows = Vec::new();

    let single = partition::single(&placement).expect("single partition valid");
    let baseline_out = route_batch(std::slice::from_ref(&single), &ExtBst::new(PAPER_BOUND))
        .pop()
        .expect("one outcome per instance")
        .expect("EXT-BST routes the baseline");
    let baseline = baseline_out.report.wirelength();
    rows.push(row_from(&placement, 1, "EXT-BST", &baseline_out, baseline));

    let instances: Vec<Instance> = GROUP_COUNTS
        .iter()
        .map(|&k| {
            let inst = mode.apply(&placement, k, seed.wrapping_add(k as u64));
            inst.with_groups(
                inst.groups()
                    .clone()
                    .with_uniform_bound(PAPER_BOUND)
                    .expect("bound is valid"),
            )
            .expect("regrouping is valid")
        })
        .collect();
    for (&k, out) in GROUP_COUNTS
        .iter()
        .zip(route_batch(&instances, &AstDme::new()))
    {
        let out = out.expect("AST-DME routes");
        assert!(
            out.report.max_intra_group_skew() <= PAPER_BOUND * (1.0 + 1e-6),
            "intra-group constraint violated: {}",
            out.report.max_intra_group_skew()
        );
        rows.push(row_from(&placement, k, "AST-DME", &out, baseline));
    }
    rows
}

/// Runs a full table over the given circuits.
pub fn run_table(mode: PartitionMode, benches: &[RBench], seed: u64) -> Vec<Row> {
    benches
        .iter()
        .flat_map(|&b| run_circuit(b, mode, seed))
        .collect()
}

/// Formats rows in the layout of the paper's tables (markdown).
pub fn to_markdown(rows: &[Row]) -> String {
    let mut out = String::from(
        "| Circuit | #groups | Algorithm | Wirelen (um) | Reduction | Max skew (ps) | CPU (s) |\n\
         |---------|---------|-----------|--------------|-----------|---------------|---------|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {} ({} sinks) | {} | {} | {:.0} | {} | {:.1} | {:.2} |\n",
            r.circuit,
            r.sinks,
            r.groups,
            r.algorithm,
            r.wirelength,
            if r.algorithm == "EXT-BST" {
                "—".to_string()
            } else {
                format!("{:.2}%", r.reduction * 100.0)
            },
            r.max_skew_ps,
            r.cpu_s
        ));
    }
    out
}

/// Serializes rows as a JSON array for machine consumption.
pub fn to_json(rows: &[Row]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|r| {
            json::object(
                &[
                    json::field("circuit", json::quote(&r.circuit)),
                    json::field("sinks", format!("{}", r.sinks)),
                    json::field("groups", format!("{}", r.groups)),
                    json::field("algorithm", json::quote(&r.algorithm)),
                    json::field("wirelength_um", json::number(r.wirelength)),
                    json::field("reduction", json::number(r.reduction)),
                    json::field("max_skew_ps", json::number(r.max_skew_ps)),
                    json::field("cpu_s", json::number(r.cpu_s)),
                ],
                2,
            )
        })
        .collect();
    json::array(&items, 0)
}

/// Circuits to run given a `--quick` flag: r1–r3 quick, all five otherwise.
pub fn circuits(quick: bool) -> Vec<RBench> {
    if quick {
        vec![RBench::R1, RBench::R2, RBench::R3]
    } else {
        RBench::ALL.to_vec()
    }
}

/// Parses `--quick` / `--json` flags from argv.
pub fn flags() -> (bool, bool) {
    let args: Vec<String> = std::env::args().collect();
    (
        args.iter().any(|a| a == "--quick"),
        args.iter().any(|a| a == "--json"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_circuit_produces_baseline_plus_group_rows() {
        // Smallest circuit, clustered (cheapest) to keep the test fast.
        let rows = run_circuit(RBench::R1, PartitionMode::Clustered, 3);
        assert_eq!(rows.len(), 1 + GROUP_COUNTS.len());
        assert_eq!(rows[0].algorithm, "EXT-BST");
        assert_eq!(rows[0].reduction, 0.0);
        for r in &rows[1..] {
            assert_eq!(r.algorithm, "AST-DME");
            assert!(r.wirelength > 0.0);
        }
    }

    #[test]
    fn markdown_and_json_render() {
        let rows = vec![Row {
            circuit: "r1".into(),
            sinks: 267,
            groups: 4,
            algorithm: "AST-DME".into(),
            wirelength: 1_000_000.0,
            reduction: 0.05,
            max_skew_ps: 42.0,
            cpu_s: 1.5,
        }];
        let md = to_markdown(&rows);
        assert!(md.contains("| r1 (267 sinks) | 4 | AST-DME | 1000000 | 5.00% | 42.0 | 1.50 |"));
        let js = to_json(&rows);
        assert!(js.contains("\"reduction\": 0.05"));
    }

    #[test]
    fn circuit_selection() {
        assert_eq!(circuits(true).len(), 3);
        assert_eq!(circuits(false).len(), 5);
    }
}
