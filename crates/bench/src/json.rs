//! Minimal JSON writing helpers for the harness outputs.
//!
//! The workspace vendors no serde; the bench outputs are flat
//! records, so a tiny escaping writer keeps the harness dependency-free.

/// Escapes a string for embedding in a JSON document (with quotes).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number (finite values only; non-finite
/// values are clamped to `null`).
pub fn number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// One `"key": value` field; `value` must already be valid JSON.
pub fn field(key: &str, value: impl AsRef<str>) -> String {
    format!("{}: {}", quote(key), value.as_ref())
}

/// A pretty-printed JSON object from pre-rendered fields, indented by
/// `indent` spaces.
pub fn object(fields: &[String], indent: usize) -> String {
    let pad = " ".repeat(indent);
    let inner = " ".repeat(indent + 2);
    let body = fields
        .iter()
        .map(|f| format!("{inner}{f}"))
        .collect::<Vec<_>>()
        .join(",\n");
    format!("{pad}{{\n{body}\n{pad}}}")
}

/// A pretty-printed JSON array from pre-rendered items.
pub fn array(items: &[String], indent: usize) -> String {
    if items.is_empty() {
        return "[]".to_string();
    }
    let pad = " ".repeat(indent);
    format!("[\n{}\n{pad}]", items.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoting_escapes_specials() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(quote("plain"), "\"plain\"");
    }

    #[test]
    fn numbers_render_compactly() {
        assert_eq!(number(0.05), "0.05");
        assert_eq!(number(3.0), "3");
        assert_eq!(number(f64::NAN), "null");
    }

    #[test]
    fn objects_and_arrays_nest() {
        let o = object(&[field("a", number(1.0)), field("b", quote("x"))], 2);
        let a = array(&[o], 0);
        assert!(a.contains("\"a\": 1"));
        assert!(a.starts_with("[\n"));
        assert!(a.ends_with("\n]"));
    }
}
