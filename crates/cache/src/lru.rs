//! A bounded, deterministically evicted least-recently-used map.

use std::collections::HashMap;
use std::hash::Hash;

/// A bounded LRU map with fully deterministic eviction.
///
/// Recency is a monotonic operation tick (not wall-clock), so for a fixed
/// sequence of [`BoundedLru::get`] / [`BoundedLru::insert`] calls the
/// eviction order is a pure function of that sequence — the property that
/// lets cache behavior pin into golden tests. [`BoundedLru::peek`] reads
/// without touching recency (for `&self` estimators that must not perturb
/// eviction order).
///
/// ```
/// use astdme_cache::BoundedLru;
///
/// let mut lru = BoundedLru::new(2);
/// assert!(lru.insert("a", 1).is_none());
/// assert!(lru.insert("b", 2).is_none());
/// lru.get(&"a"); // touch: "b" is now least recent
/// assert_eq!(lru.insert("c", 3), Some(("b", 2)));
/// assert!(lru.peek(&"a").is_some());
/// assert!(lru.peek(&"b").is_none());
/// ```
#[derive(Debug, Clone)]
pub struct BoundedLru<K, V> {
    capacity: usize,
    tick: u64,
    /// Slot storage: `(key, value, last-touched tick)`. Slots are stable;
    /// eviction replaces the argmin-tick slot in place.
    slots: Vec<(K, V, u64)>,
    /// Key → slot index.
    index: HashMap<K, usize>,
}

impl<K: Eq + Hash + Clone, V> BoundedLru<K, V> {
    /// An empty map holding at most `capacity` entries (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            tick: 0,
            slots: Vec::with_capacity(capacity.min(1024)),
            index: HashMap::new(),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether `key` is present (does not touch recency).
    pub fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    /// Looks `key` up and marks it most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let slot = *self.index.get(key)?;
        self.tick += 1;
        self.slots[slot].2 = self.tick;
        Some(&self.slots[slot].1)
    }

    /// Looks `key` up **without** touching recency — for `&self`-style
    /// estimators that must not perturb the eviction order.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.index.get(key).map(|&slot| &self.slots[slot].1)
    }

    /// Mutable lookup, marking `key` most recently used.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let slot = *self.index.get(key)?;
        self.tick += 1;
        self.slots[slot].2 = self.tick;
        Some(&mut self.slots[slot].1)
    }

    /// Inserts (or replaces) `key`, marking it most recently used. When
    /// the map is full and `key` is new, the least-recently-used entry is
    /// evicted and returned.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        self.tick += 1;
        if let Some(&slot) = self.index.get(&key) {
            self.slots[slot].1 = value;
            self.slots[slot].2 = self.tick;
            return None;
        }
        if self.slots.len() < self.capacity {
            self.index.insert(key.clone(), self.slots.len());
            self.slots.push((key, value, self.tick));
            return None;
        }
        // Evict the argmin tick. Ticks are unique (each operation bumps
        // the counter), so the victim is unambiguous and the eviction
        // order is a pure function of the operation sequence.
        let victim = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, _, t))| *t)
            .map(|(i, _)| i)
            .expect("capacity >= 1");
        let old = std::mem::replace(&mut self.slots[victim], (key.clone(), value, self.tick));
        self.index.remove(&old.0);
        self.index.insert(key, victim);
        Some((old.0, old.1))
    }

    /// Drops every entry (capacity unchanged).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.index.clear();
    }

    /// Iterates `(key, value)` in unspecified order (recency untouched).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.slots.iter().map(|(k, v, _)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_clamps_to_one() {
        let mut lru = BoundedLru::new(0);
        assert_eq!(lru.capacity(), 1);
        assert!(lru.insert(1, "a").is_none());
        assert_eq!(lru.insert(2, "b"), Some((1, "a")));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let mut lru = BoundedLru::new(3);
        for k in 0..3 {
            lru.insert(k, k * 10);
        }
        // Touch 0 and 2; 1 becomes the victim.
        lru.get(&0);
        lru.get(&2);
        assert_eq!(lru.insert(3, 30), Some((1, 10)));
        assert!(lru.contains(&0) && lru.contains(&2) && lru.contains(&3));
    }

    #[test]
    fn peek_does_not_touch_recency() {
        let mut lru = BoundedLru::new(2);
        lru.insert(1, "one");
        lru.insert(2, "two");
        // Peeking 1 must NOT save it: it is still least recent.
        assert_eq!(lru.peek(&1), Some(&"one"));
        assert_eq!(lru.insert(3, "three"), Some((1, "one")));
    }

    #[test]
    fn reinsert_replaces_and_touches() {
        let mut lru = BoundedLru::new(2);
        lru.insert(1, "one");
        lru.insert(2, "two");
        assert!(lru.insert(1, "uno").is_none(), "replacement, no eviction");
        assert_eq!(lru.peek(&1), Some(&"uno"));
        // 2 is now least recent.
        assert_eq!(lru.insert(3, "three"), Some((2, "two")));
    }

    #[test]
    fn eviction_sequence_is_deterministic() {
        // Same operation sequence ⇒ same eviction sequence, every run.
        let run = || {
            let mut lru = BoundedLru::new(2);
            let mut evicted = Vec::new();
            for k in 0..6u32 {
                if let Some((old, _)) = lru.insert(k, k) {
                    evicted.push(old);
                }
                lru.get(&k.saturating_sub(1));
            }
            evicted
        };
        assert_eq!(run(), run());
        // The trailing get() keeps each previous key alive past the next
        // insert, so victims alternate: 1, 0, 3, 2.
        assert_eq!(run(), vec![1, 0, 3, 2]);
    }

    #[test]
    fn clear_empties_but_keeps_capacity() {
        let mut lru = BoundedLru::new(2);
        lru.insert(1, 1);
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.capacity(), 2);
        assert!(lru.insert(1, 1).is_none());
        assert_eq!(lru.iter().count(), 1);
    }
}
