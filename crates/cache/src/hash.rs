//! A vendored, word-oriented SipHash-style hasher with 128-bit output.
//!
//! The cache hashes fixed-width `u64` words only (counts, indices, and
//! `f64::to_bits` images), so the byte-tail handling of the reference
//! SipHash is unnecessary; this implementation absorbs whole words through
//! the standard SipRound permutation (2 compression rounds per word, 4
//! finalization rounds, the 2-4 schedule) and folds the word count into
//! the finalization in place of the byte-length block. It is *SipHash
//! style*, not bit-compatible with the reference vectors — the only
//! contract the cache needs is: deterministic, platform-independent,
//! keyed, and collision-resistant enough that an independent second key
//! pair makes silent collisions practically impossible.

use core::fmt;

/// A 128-bit content fingerprint.
///
/// Ordered and hashable so it can key maps and sort deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fingerprint {
    /// High 64 bits.
    pub hi: u64,
    /// Low 64 bits.
    pub lo: u64,
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// The SipHash-style streaming hasher behind [`Fingerprint`].
///
/// ```
/// use astdme_cache::SipHasher128;
///
/// let mut h = SipHasher128::new(1, 2);
/// h.write_u64(42);
/// let a = h.finish128();
/// let mut h = SipHasher128::new(1, 2);
/// h.write_u64(43);
/// assert_ne!(a, h.finish128(), "different words, different digests");
/// ```
#[derive(Debug, Clone)]
pub struct SipHasher128 {
    v0: u64,
    v1: u64,
    v2: u64,
    v3: u64,
    words: u64,
}

#[inline]
fn sipround(v0: &mut u64, v1: &mut u64, v2: &mut u64, v3: &mut u64) {
    *v0 = v0.wrapping_add(*v1);
    *v1 = v1.rotate_left(13);
    *v1 ^= *v0;
    *v0 = v0.rotate_left(32);
    *v2 = v2.wrapping_add(*v3);
    *v3 = v3.rotate_left(16);
    *v3 ^= *v2;
    *v0 = v0.wrapping_add(*v3);
    *v3 = v3.rotate_left(21);
    *v3 ^= *v0;
    *v2 = v2.wrapping_add(*v1);
    *v1 = v1.rotate_left(17);
    *v1 ^= *v2;
    *v2 = v2.rotate_left(32);
}

impl SipHasher128 {
    /// Creates a hasher keyed by `(k0, k1)`. Different key pairs give
    /// statistically independent digests over the same input — the basis
    /// of the cache's primary/verify double-fingerprint scheme.
    pub fn new(k0: u64, k1: u64) -> Self {
        Self {
            // The classic "somepseudorandomlygeneratedbytes" constants,
            // with the 128-bit variant's v1 tweak.
            v0: k0 ^ 0x736f_6d65_7073_6575,
            v1: (k1 ^ 0x646f_7261_6e64_6f6d) ^ 0xee,
            v2: k0 ^ 0x6c79_6765_6e65_7261,
            v3: k1 ^ 0x7465_6462_7974_6573,
            words: 0,
        }
    }

    /// Absorbs one 64-bit word (two compression rounds).
    #[inline]
    pub fn write_u64(&mut self, m: u64) {
        self.v3 ^= m;
        sipround(&mut self.v0, &mut self.v1, &mut self.v2, &mut self.v3);
        sipround(&mut self.v0, &mut self.v1, &mut self.v2, &mut self.v3);
        self.v0 ^= m;
        self.words += 1;
    }

    /// Absorbs an `f64` by its exact bit pattern (no rounding, so the
    /// digest inherits f64 equality bit for bit).
    #[inline]
    pub fn write_f64(&mut self, x: f64) {
        self.write_u64(x.to_bits());
    }

    /// Absorbs a `usize` (as `u64`, platform-independently).
    #[inline]
    pub fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    /// Finalizes into a 128-bit [`Fingerprint`]. Consumes the hasher; the
    /// word count is folded in first, so prefix inputs cannot collide with
    /// their extensions.
    pub fn finish128(mut self) -> Fingerprint {
        let len = self.words;
        self.write_u64(len);
        let (mut v0, mut v1, mut v2, mut v3) = (self.v0, self.v1, self.v2, self.v3);
        v2 ^= 0xee;
        for _ in 0..4 {
            sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        }
        let hi = v0 ^ v1 ^ v2 ^ v3;
        v1 ^= 0xdd;
        for _ in 0..4 {
            sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        }
        let lo = v0 ^ v1 ^ v2 ^ v3;
        Fingerprint { hi, lo }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(keys: (u64, u64), words: &[u64]) -> Fingerprint {
        let mut h = SipHasher128::new(keys.0, keys.1);
        for &w in words {
            h.write_u64(w);
        }
        h.finish128()
    }

    #[test]
    fn deterministic_and_input_sensitive() {
        let a = digest((1, 2), &[10, 20, 30]);
        assert_eq!(a, digest((1, 2), &[10, 20, 30]));
        assert_ne!(a, digest((1, 2), &[10, 20, 31]));
        assert_ne!(a, digest((1, 2), &[30, 20, 10]), "order must matter");
    }

    #[test]
    fn key_separates_digests() {
        let words = [7u64, 8, 9];
        assert_ne!(digest((1, 2), &words), digest((3, 4), &words));
    }

    #[test]
    fn length_is_folded_in() {
        // A zero word appended must change the digest even though the
        // absorbed words XOR identically into an empty tail.
        let a = digest((1, 2), &[5]);
        let b = digest((1, 2), &[5, 0]);
        assert_ne!(a, b);
        assert_ne!(digest((1, 2), &[]), digest((1, 2), &[0]));
    }

    #[test]
    fn f64_bits_distinguish_negative_zero() {
        let mut h = SipHasher128::new(0, 0);
        h.write_f64(0.0);
        let pos = h.finish128();
        let mut h = SipHasher128::new(0, 0);
        h.write_f64(-0.0);
        assert_ne!(pos, h.finish128(), "bit-pattern hashing, not value");
    }

    #[test]
    fn single_bit_flips_avalanche() {
        // Crude avalanche sanity: flipping one input bit flips a healthy
        // fraction of output bits (exact counts are not part of the
        // contract; "roughly half" guards against a degenerate mixer).
        let base = digest((11, 13), &[0x0123_4567_89ab_cdef, 42]);
        for bit in [0u32, 17, 33, 63] {
            let flipped = digest((11, 13), &[0x0123_4567_89ab_cdef ^ (1u64 << bit), 42]);
            let dist = (base.hi ^ flipped.hi).count_ones() + (base.lo ^ flipped.lo).count_ones();
            assert!((30..=98).contains(&dist), "bit {bit}: distance {dist}");
        }
    }

    #[test]
    fn display_is_32_hex_chars() {
        let s = digest((1, 2), &[3]).to_string();
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(Fingerprint::default().to_string(), "0".repeat(32));
    }
}
