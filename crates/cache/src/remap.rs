//! Dense id remapping for subtree splicing.
//!
//! The miden-vm merger idiom: when a cached region's nodes land at new
//! indices in a destination tree, every internal reference (here: parent
//! indices) is rewritten through a dense old-index → new-index table
//! built while copying.

use astdme_engine::RoutedNode;
use astdme_geom::Point;

/// A dense old-index → new-index remap table.
///
/// Old indices are expected to be dense (0..n of a cached node vector), so
/// the table is a plain vector — O(1) insert and lookup, no hashing.
///
/// ```
/// use astdme_cache::DenseIdMap;
///
/// let mut map = DenseIdMap::with_capacity(3);
/// map.insert(0, 10);
/// map.insert(2, 12);
/// assert_eq!(map.get(0), Some(10));
/// assert_eq!(map.get(1), None);
/// assert_eq!(map.get(2), Some(12));
/// ```
#[derive(Debug, Clone, Default)]
pub struct DenseIdMap {
    forward: Vec<Option<usize>>,
}

impl DenseIdMap {
    /// An empty map expecting old indices below `capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            forward: vec![None; capacity],
        }
    }

    /// Records `old → new`, growing the table as needed.
    pub fn insert(&mut self, old: usize, new: usize) {
        if old >= self.forward.len() {
            self.forward.resize(old + 1, None);
        }
        self.forward[old] = Some(new);
    }

    /// The new index mapped for `old`, if recorded.
    pub fn get(&self, old: usize) -> Option<usize> {
        self.forward.get(old).copied().flatten()
    }

    /// Number of recorded mappings.
    pub fn len(&self) -> usize {
        self.forward.iter().filter(|m| m.is_some()).count()
    }

    /// Whether no mapping is recorded.
    pub fn is_empty(&self) -> bool {
        self.forward.iter().all(|m| m.is_none())
    }
}

/// Splices `region` (a cached node vector in its normalized frame) onto
/// the end of `dst`, translating every position by `delta` and rewriting
/// parent indices through a [`DenseIdMap`] built during the copy. The
/// region's root (old index 0) is attached to `attach` (a node already in
/// `dst`, or `None` to keep it a root). Returns the root's new index.
///
/// # Panics
///
/// Panics if a region node's parent index is not an earlier region index —
/// cached vectors come from [`astdme_engine::RoutedTree::nodes`], whose
/// constructor validated exactly that shape.
pub fn splice_region(
    dst: &mut Vec<RoutedNode>,
    region: &[RoutedNode],
    delta: Point,
    attach: Option<usize>,
) -> usize {
    let offset = dst.len();
    let mut remap = DenseIdMap::with_capacity(region.len());
    for (old, node) in region.iter().enumerate() {
        let parent = match node.parent {
            Some(p) => Some(remap.get(p).expect("region parents precede children")),
            None => attach,
        };
        let new = dst.len();
        remap.insert(old, new);
        dst.push(RoutedNode {
            pos: Point::new(node.pos.x + delta.x, node.pos.y + delta.y),
            parent,
            wire: node.wire,
            sink: node.sink,
        });
    }
    offset
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> Vec<RoutedNode> {
        vec![
            RoutedNode {
                pos: Point::new(0.0, 0.0),
                parent: None,
                wire: 1.0,
                sink: None,
            },
            RoutedNode {
                pos: Point::new(2.0, 0.0),
                parent: Some(0),
                wire: 2.0,
                sink: Some(0),
            },
            RoutedNode {
                pos: Point::new(0.0, 3.0),
                parent: Some(0),
                wire: 3.0,
                sink: Some(1),
            },
        ]
    }

    #[test]
    fn splice_at_zero_offset_is_identity_modulo_delta() {
        let mut dst = Vec::new();
        let root = splice_region(&mut dst, &region(), Point::new(10.0, 20.0), None);
        assert_eq!(root, 0);
        assert_eq!(dst.len(), 3);
        assert_eq!(dst[0].parent, None);
        assert_eq!(dst[1].parent, Some(0));
        assert_eq!(dst[0].pos, Point::new(10.0, 20.0));
        assert_eq!(dst[2].pos, Point::new(10.0, 23.0));
        assert_eq!(dst[2].wire, 3.0);
    }

    #[test]
    fn splice_at_nonzero_offset_remaps_parents() {
        // Destination already holds two nodes; the region lands at 2..5
        // with its root attached under destination node 1.
        let mut dst = vec![
            RoutedNode {
                pos: Point::new(0.0, 0.0),
                parent: None,
                wire: 0.0,
                sink: None,
            },
            RoutedNode {
                pos: Point::new(1.0, 0.0),
                parent: Some(0),
                wire: 1.0,
                sink: None,
            },
        ];
        let root = splice_region(&mut dst, &region(), Point::new(0.0, 0.0), Some(1));
        assert_eq!(root, 2);
        assert_eq!(dst.len(), 5);
        assert_eq!(dst[2].parent, Some(1), "region root attaches to dst");
        assert_eq!(dst[3].parent, Some(2), "old parent 0 remaps to new 2");
        assert_eq!(dst[4].parent, Some(2));
        assert_eq!(dst[3].sink, Some(0));
    }

    #[test]
    fn dense_map_basics() {
        let mut map = DenseIdMap::default();
        assert!(map.is_empty());
        map.insert(5, 1);
        assert_eq!(map.get(5), Some(1));
        assert_eq!(map.get(4), None);
        assert_eq!(map.len(), 1);
        map.insert(0, 7);
        assert_eq!(map.len(), 2);
        assert!(!map.is_empty());
    }
}
