//! Content-addressed subtree cache for repeated merge regions.
//!
//! Real routing traffic repeats itself: the same sub-instance (a cluster
//! of sinks with identical relative geometry, group structure, and delay
//! parameters) recurs across portfolio batches, across robustness-sweep
//! variants, and across repeated calls on the same scenario. This crate
//! provides the machinery that lets the pipeline recognize a repeat and
//! splice the previously planned and embedded subtree instead of
//! recomputing it — the dedup-on-merge design of miden-vm's
//! `MastForestMerger` (node fingerprints, dense id remapping) transplanted
//! to clock routing:
//!
//! * [`SipHasher128`] — a vendored, word-oriented SipHash-style hasher
//!   producing a 128-bit [`Fingerprint`]; no external dependency, stable
//!   across platforms and releases of this workspace.
//! * [`region_fingerprint`] — the canonical fingerprint of a merge region:
//!   a translation-normalized instance plus the routing-relevant plan
//!   configuration, hashed field by field (see **Canonicalization** below).
//! * [`DenseIdMap`] + [`splice_region`] — the remap table used to splice a
//!   cached node vector into a destination tree, rewriting parent indices
//!   through the dense old-index → new-index map.
//! * [`BoundedLru`] — a bounded, deterministically evicted
//!   least-recently-used map (monotonic recency ticks, argmin eviction; no
//!   randomized or address-dependent state anywhere).
//! * [`SubtreeCache`] — the shared, thread-safe handle the fleet layer
//!   threads through batches and sweeps: fingerprint → [`CachedRegion`]
//!   (the planned merge region's embedded node vector plus its trace
//!   counters), with hit/miss/insert/eviction [`CacheStats`].
//!
//! # Canonicalization rules
//!
//! Two instances share a fingerprint exactly when they are bit-identical
//! after **translation normalization**: subtract the bounding-box minimum
//! corner (the anchor) from every sink position and from the source. The
//! fingerprint covers, in fixed order:
//!
//! 1. sink count, then per sink the normalized position bits
//!    (`f64::to_bits`) and the load-capacitance bits;
//! 2. group structure: group count, per-sink group assignment, per-group
//!    skew-bound bits;
//! 3. the normalized source position bits;
//! 4. the RC technology bits (`r_per_um`, `c_per_um`);
//! 5. the caller-supplied plan words — the routing-relevant stage
//!    configuration (delay model, engine preset, merge order, grouping
//!    and merge-stage discriminants), encoded by the crate that owns each
//!    config type. Diagnostic-only knobs (e.g. the engine's `debug` flag)
//!    are deliberately excluded: they never change a routed bit.
//!
//! Everything is hashed as raw `u64` words — coordinate *bits*, never
//! rounded values — so the fingerprint inherits f64 equality exactly: no
//! epsilon, no false positives from nearby-but-different geometry. Every
//! lookup additionally checks a second fingerprint computed under an
//! independent key pair ([`CachedRegion::verify`]) and the sink count, so
//! a primary-key collision (already ~2⁻¹²⁸) cannot splice the wrong
//! subtree silently.
//!
//! # Determinism contract
//!
//! A cache *hit* returns the stored normalized node vector; splicing it at
//! the instance's anchor is the same arithmetic the miss path performs on
//! its freshly routed normalized tree. The pipeline therefore guarantees
//! **hit ≡ recompute to the bit** — trees, audit reports, wirelengths — at
//! every thread count, under every eviction order, and however the cache
//! is shared (see `astdme_core::pipeline`). Eviction order itself is
//! deterministic for a fixed operation sequence: recency is a monotonic
//! tick counter, never wall-clock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hash;
mod lru;
mod region;
mod remap;

pub use hash::{Fingerprint, SipHasher128};
pub use lru::BoundedLru;
pub use region::{region_fingerprint, CacheStats, CachedRegion, SubtreeCache};
pub use remap::{splice_region, DenseIdMap};
