//! The memo itself: canonical region fingerprints, cached planned regions,
//! and the shared thread-safe cache handle.

use std::sync::{Arc, Mutex, MutexGuard};

use astdme_engine::{Instance, RoutedNode, RoutedTree};
use astdme_geom::Point;

use crate::hash::{Fingerprint, SipHasher128};
use crate::lru::BoundedLru;
use crate::remap::splice_region;

/// Key pair of the primary (lookup) fingerprint.
const PRIMARY_KEYS: (u64, u64) = (0x4153_545f_444d_4531, 0x6361_6368_655f_6b31);
/// Key pair of the independent verification fingerprint.
const VERIFY_KEYS: (u64, u64) = (0x4153_545f_444d_4532, 0x6361_6368_655f_6b32);

/// Computes the canonical `(primary, verify)` fingerprints of a merge
/// region: a **translation-normalized** instance (anchor already
/// subtracted — see the [crate docs](crate) for the canonicalization
/// rules) plus the routing-relevant plan configuration encoded as
/// `plan_words` by the caller.
///
/// Both fingerprints cover the same words under independent key pairs;
/// the cache stores the second and re-checks it on every lookup, so a
/// primary collision cannot splice the wrong subtree silently.
pub fn region_fingerprint(normalized: &Instance, plan_words: &[u64]) -> (Fingerprint, Fingerprint) {
    let hash = |keys: (u64, u64)| {
        let mut h = SipHasher128::new(keys.0, keys.1);
        h.write_usize(normalized.sink_count());
        for s in normalized.sinks() {
            h.write_f64(s.pos.x);
            h.write_f64(s.pos.y);
            h.write_f64(s.cap);
        }
        let groups = normalized.groups();
        h.write_usize(groups.group_count());
        for i in 0..normalized.sink_count() {
            h.write_usize(groups.group_of(i).index());
        }
        for &b in groups.bounds() {
            h.write_f64(b);
        }
        h.write_f64(normalized.source().x);
        h.write_f64(normalized.source().y);
        h.write_f64(normalized.rc().r_per_um());
        h.write_f64(normalized.rc().c_per_um());
        h.write_usize(plan_words.len());
        for &w in plan_words {
            h.write_u64(w);
        }
        h.finish128()
    };
    (hash(PRIMARY_KEYS), hash(VERIFY_KEYS))
}

/// A planned and embedded merge region in its normalized frame: the node
/// vector of the post-repair routed tree (anchor at the origin) plus the
/// trace counters a cache hit must restore so hit outcomes are
/// bit-identical to recomputed ones, counters included.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedRegion {
    /// The verification fingerprint (independent key pair) checked on
    /// every lookup.
    pub verify: Fingerprint,
    /// Sink count of the region (cheap structural sanity check).
    pub sink_count: usize,
    /// Post-repair routed nodes, positions in the normalized frame.
    pub nodes: Vec<RoutedNode>,
    /// Merge-stage planning rounds.
    pub rounds: usize,
    /// Merge-stage merges performed.
    pub merges: usize,
    /// Repair-stage iterations (zero when repair was a no-op).
    pub repair_iterations: usize,
}

impl CachedRegion {
    /// Splices the region into a fresh [`RoutedTree`] translated by
    /// `anchor`, rooted at the caller's `source`. Both the hit path and
    /// the miss path of the pipeline build their final tree through this
    /// one function — identical arithmetic is what makes hit ≡ recompute
    /// bit-exact.
    pub fn splice(&self, anchor: Point, source: Point) -> RoutedTree {
        let mut nodes = Vec::with_capacity(self.nodes.len());
        splice_region(&mut nodes, &self.nodes, anchor, None);
        RoutedTree::new(source, nodes)
    }
}

/// Hit/miss/insert/eviction counters of a [`SubtreeCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a verified entry.
    pub hits: u64,
    /// Lookups that found nothing (or failed verification).
    pub misses: u64,
    /// Entries inserted.
    pub inserts: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits over total lookups, `0.0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct CacheInner {
    lru: BoundedLru<Fingerprint, Arc<CachedRegion>>,
    stats: CacheStats,
}

/// The shared, thread-safe content-addressed subtree cache handle.
///
/// Cloning the handle shares the underlying store (it is an `Arc`), which
/// is how one cache serves a whole batch, repeated batches, and repeated
/// robustness sweeps. Entries are `Arc`-shared, so a hit costs a lock, a
/// map probe, and a pointer clone — never a node-vector copy.
///
/// Capacity is a hard bound enforced by a deterministic [`BoundedLru`]:
/// for a fixed lookup/insert sequence the eviction order is a pure
/// function of that sequence. Under concurrent batches the *interleaving*
/// (and hence hit counts) may vary run to run — what never varies is any
/// routed bit, because a hit replays exactly what a miss recomputes.
#[derive(Debug, Clone)]
pub struct SubtreeCache {
    inner: Arc<Mutex<CacheInner>>,
}

impl SubtreeCache {
    /// A cache bounded to `capacity` regions (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(CacheInner {
                lru: BoundedLru::new(capacity),
                stats: CacheStats::default(),
            })),
        }
    }

    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        // The lock is only ever held for map probes; a panic while holding
        // it is impossible in this module, but the fleet layer catches
        // arbitrary router panics, so don't let poisoning cascade.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Maximum number of cached regions.
    pub fn capacity(&self) -> usize {
        self.lock().lru.capacity()
    }

    /// Current number of cached regions.
    pub fn len(&self) -> usize {
        self.lock().lru.len()
    }

    /// Whether the cache holds no regions.
    pub fn is_empty(&self) -> bool {
        self.lock().lru.is_empty()
    }

    /// Looks up `key`, returning the entry only if its verification
    /// fingerprint and sink count also match (a mismatch counts as a
    /// miss). A hit touches LRU recency.
    pub fn lookup(
        &self,
        key: Fingerprint,
        verify: Fingerprint,
        sink_count: usize,
    ) -> Option<Arc<CachedRegion>> {
        let mut inner = self.lock();
        match inner.lru.get(&key) {
            Some(entry) if entry.verify == verify && entry.sink_count == sink_count => {
                let entry = Arc::clone(entry);
                inner.stats.hits += 1;
                Some(entry)
            }
            _ => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) the region under `key`, evicting the
    /// least-recently-used entry when full.
    pub fn insert(&self, key: Fingerprint, region: CachedRegion) {
        let mut inner = self.lock();
        inner.stats.inserts += 1;
        if inner.lru.insert(key, Arc::new(region)).is_some() {
            inner.stats.evictions += 1;
        }
    }

    /// A snapshot of the hit/miss/insert/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.lock().stats
    }

    /// Drops every cached region and zeroes the counters (capacity kept).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.lru.clear();
        inner.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astdme_delay::RcParams;
    use astdme_engine::{Groups, Sink};

    fn inst(offset: f64) -> Instance {
        let sinks = vec![
            Sink::new(Point::new(offset, offset + 1.0), 1e-14),
            Sink::new(Point::new(offset + 10.0, offset), 2e-14),
        ];
        Instance::new(
            sinks,
            Groups::from_assignments(vec![0, 1], 2).unwrap(),
            RcParams::default(),
            Point::new(offset + 5.0, offset + 8.0),
        )
        .unwrap()
    }

    #[test]
    fn fingerprint_is_deterministic_and_plan_sensitive() {
        let a = region_fingerprint(&inst(0.0), &[1, 2]);
        assert_eq!(a, region_fingerprint(&inst(0.0), &[1, 2]));
        assert_ne!(a, region_fingerprint(&inst(0.0), &[1, 3]));
        assert_ne!(a, region_fingerprint(&inst(1.0), &[1, 2]));
        assert_ne!(a.0, a.1, "primary and verify keys must be independent");
    }

    fn toy_region(verify: Fingerprint) -> CachedRegion {
        CachedRegion {
            verify,
            sink_count: 1,
            nodes: vec![RoutedNode {
                pos: Point::new(1.0, 2.0),
                parent: None,
                wire: 3.0,
                sink: Some(0),
            }],
            rounds: 1,
            merges: 0,
            repair_iterations: 0,
        }
    }

    #[test]
    fn lookup_counts_hits_and_verifies() {
        let cache = SubtreeCache::new(4);
        let key = Fingerprint { hi: 1, lo: 2 };
        let verify = Fingerprint { hi: 3, lo: 4 };
        assert!(cache.lookup(key, verify, 1).is_none());
        cache.insert(key, toy_region(verify));
        assert!(cache.lookup(key, verify, 1).is_some());
        // Wrong verification fingerprint or sink count: a miss, not a hit.
        assert!(cache.lookup(key, Fingerprint::default(), 1).is_none());
        assert!(cache.lookup(key, verify, 2).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 3, 1));
        assert!((stats.hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn bounded_eviction_counts() {
        let cache = SubtreeCache::new(1);
        let v = Fingerprint::default();
        cache.insert(Fingerprint { hi: 1, lo: 0 }, toy_region(v));
        cache.insert(Fingerprint { hi: 2, lo: 0 }, toy_region(v));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.lookup(Fingerprint { hi: 1, lo: 0 }, v, 1).is_none());
        assert!(cache.lookup(Fingerprint { hi: 2, lo: 0 }, v, 1).is_some());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
        assert_eq!(cache.capacity(), 1);
    }

    #[test]
    fn splice_translates_back() {
        let region = toy_region(Fingerprint::default());
        let tree = region.splice(Point::new(100.0, 200.0), Point::new(0.0, 0.0));
        assert_eq!(tree.nodes().len(), 1);
        assert_eq!(tree.nodes()[0].pos, Point::new(101.0, 202.0));
        assert_eq!(tree.nodes()[0].wire, 3.0);
        assert_eq!(tree.source(), Point::new(0.0, 0.0));
    }

    #[test]
    fn clones_share_the_store() {
        let cache = SubtreeCache::new(4);
        let clone = cache.clone();
        let key = Fingerprint { hi: 9, lo: 9 };
        let v = Fingerprint::default();
        clone.insert(key, toy_region(v));
        assert!(cache.lookup(key, v, 1).is_some());
        assert_eq!(cache.stats().inserts, 1);
    }
}
