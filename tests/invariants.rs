//! Property-based end-to-end invariants: random instances, every
//! constraint re-verified by the independent audit, bookkeeping/audit
//! agreement.

use astdme::{
    audit, group_ranges, AstDme, ClockRouter, DelayModel, GreedyDme, Groups, Instance, Point,
    RcParams, Sink,
};
use proptest::prelude::*;

/// Random instance: n sinks on a 20k-µm die, k groups, random assignment.
fn instance_strategy() -> impl Strategy<Value = Instance> {
    (4usize..24, 1usize..5, any::<u64>()).prop_map(|(n, k, seed)| {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 16) as f64 / (u64::MAX >> 16) as f64
        };
        let sinks: Vec<Sink> = (0..n)
            .map(|_| {
                Sink::new(
                    Point::new(next() * 20_000.0, next() * 20_000.0),
                    5e-15 + next() * 5e-14,
                )
            })
            .collect();
        // Ensure every group non-empty: first k sinks get groups 0..k.
        let assignment: Vec<usize> = (0..n)
            .map(|i| {
                if i < k {
                    i
                } else {
                    (next() * k as f64) as usize % k
                }
            })
            .collect();
        Instance::new(
            sinks,
            Groups::from_assignments(assignment, k).expect("valid"),
            RcParams::default(),
            Point::new(10_000.0, 10_000.0),
        )
        .expect("valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ast_dme_always_meets_zero_intra_group_skew(inst in instance_strategy()) {
        let tree = AstDme::new().route(&inst).expect("routes");
        let report = audit(&tree, &inst, &DelayModel::elmore(*inst.rc()));
        prop_assert_eq!(tree.sink_nodes().count(), inst.sink_count());
        prop_assert!(
            report.max_intra_group_skew() < 1e-16,
            "intra skew {}", report.max_intra_group_skew()
        );
    }

    #[test]
    fn audited_wirelength_is_at_least_steiner_lower_bound(inst in instance_strategy()) {
        // Any tree connecting source and sinks is at least the bounding
        // half-perimeter of the terminals.
        let tree = AstDme::new().route(&inst).expect("routes");
        let report = audit(&tree, &inst, &DelayModel::elmore(*inst.rc()));
        let bb = astdme::Rect::bounding(
            inst.sinks().iter().map(|s| s.pos).chain([inst.source()]),
        ).expect("non-empty");
        prop_assert!(report.wirelength() >= bb.width().max(bb.height()) - 1e-6);
    }

    #[test]
    fn group_delay_ranges_are_consistent_with_global_skew(inst in instance_strategy()) {
        let tree = AstDme::new().route(&inst).expect("routes");
        let report = audit(&tree, &inst, &DelayModel::elmore(*inst.rc()));
        let ranges = group_ranges(&report, &inst);
        let lo = ranges.iter().map(|&(_, l, _)| l).fold(f64::INFINITY, f64::min);
        let hi = ranges.iter().map(|&(_, _, h)| h).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((report.global_skew() - (hi - lo)).abs() < 1e-18);
    }

    #[test]
    fn zero_skew_router_is_a_valid_ast_solution(inst in instance_strategy()) {
        // Greedy-DME's zero-skew tree trivially satisfies any associative
        // constraint set on the same sinks.
        let tree = GreedyDme::new().route(&inst).expect("routes");
        let report = audit(&tree, &inst, &DelayModel::elmore(*inst.rc()));
        prop_assert!(report.max_intra_group_skew() < 1e-16);
    }

    #[test]
    fn snaking_is_never_negative_and_bounded_by_wirelength(inst in instance_strategy()) {
        let tree = AstDme::new().route(&inst).expect("routes");
        prop_assert!(tree.total_snaking() >= 0.0);
        prop_assert!(tree.total_snaking() <= tree.total_wirelength() + 1e-9);
    }
}
