//! Determinism and driver-equivalence tests over the full routing stack:
//! the same instance must produce the identical routed tree on every run,
//! for every merge order, and the incremental planner must route exactly
//! what the from-scratch reference planner routes.
//!
//! These run under both feature sets in CI (default and `parallel`); the
//! parallel pair-cost path preserves order, so its trees are bit-identical
//! to serial ones.

use astdme::instances::{partition, synthetic_instance};
use astdme::{
    run_bottom_up, run_bottom_up_from_scratch, AstDme, ClockRouter, DelayModel, EngineConfig,
    GreedyDme, Instance, MergeOrder, RoutedTree, StitchPerGroup, TopoConfig,
};

const BOUND: f64 = 10e-12;

fn instance(n: usize, k: usize, seed: u64) -> Instance {
    let p = synthetic_instance(n, seed, "det");
    let inst = partition::intermingled(&p, k, seed ^ 1).expect("valid partition");
    inst.with_groups(
        inst.groups()
            .clone()
            .with_uniform_bound(BOUND)
            .expect("bound ok"),
    )
    .expect("regroup ok")
}

/// Exact structural equality of routed trees (positions, parents, wire).
fn assert_identical(a: &RoutedTree, b: &RoutedTree) {
    assert_eq!(a.nodes().len(), b.nodes().len(), "node counts differ");
    for (x, y) in a.nodes().iter().zip(b.nodes().iter()) {
        assert_eq!(x.parent, y.parent);
        assert_eq!(x.sink, y.sink);
        assert_eq!(x.pos.x, y.pos.x);
        assert_eq!(x.pos.y, y.pos.y);
        assert_eq!(x.wire, y.wire);
    }
    assert_eq!(a.total_wirelength(), b.total_wirelength());
}

#[test]
fn repeated_routing_is_bit_identical() {
    let inst = instance(90, 4, 17);
    for topo in [
        TopoConfig::greedy(),
        TopoConfig::default(),
        TopoConfig {
            order: MergeOrder::MultiMerge { fraction: 0.4 },
            delay_weight: 1e12,
        },
    ] {
        let router = AstDme::new().with_topo(topo);
        let t1 = router.route(&inst).expect("routes");
        let t2 = router.route(&inst).expect("routes");
        assert_identical(&t1, &t2);
    }
}

#[test]
fn all_routers_are_deterministic() {
    let inst = instance(60, 3, 23);
    let routers: Vec<Box<dyn ClockRouter>> = vec![
        Box::new(AstDme::new()),
        Box::new(GreedyDme::new()),
        Box::new(StitchPerGroup::new()),
    ];
    for r in routers {
        let t1 = r.route(&inst).expect("routes");
        let t2 = r.route(&inst).expect("routes");
        assert_identical(&t1, &t2);
    }
}

/// With the `parallel` feature, the engine fans candidate-pair expansion
/// and cost estimation out via `astdme_par`. The routed tree must not
/// depend on how many threads that fan-out uses — forcing one thread runs
/// byte-for-byte the serial code path, so comparing against it asserts
/// "with and without the parallel feature" inside a single build.
#[cfg(feature = "parallel")]
mod parallel_expansion {
    use super::*;
    use proptest::prelude::*;
    use std::num::NonZeroUsize;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn routed_trees_are_identical_across_thread_counts(
            n in 20usize..90,
            k in 1usize..5,
            seed in any::<u64>(),
        ) {
            let inst = instance(n, k, seed);
            let router = AstDme::new();
            astdme_par::set_thread_override(NonZeroUsize::new(1));
            let serial = router.route(&inst).expect("routes");
            for threads in [2usize, 4] {
                astdme_par::set_thread_override(NonZeroUsize::new(threads));
                let par = router.route(&inst).expect("routes");
                assert_identical(&serial, &par);
            }
            astdme_par::set_thread_override(None);
            let auto = router.route(&inst).expect("routes");
            assert_identical(&serial, &auto);
        }
    }
}

#[test]
fn incremental_planner_routes_identically_to_from_scratch() {
    // Big enough that the whole grid regime, the brute-force tail, and
    // several grid rebuilds are exercised.
    let inst = instance(150, 4, 5);
    let model = DelayModel::elmore(*inst.rc());
    for topo in [TopoConfig::greedy(), TopoConfig::default()] {
        let (forest_inc, root_inc) = run_bottom_up(&inst, model, EngineConfig::default(), &topo);
        let (forest_ref, root_ref) =
            run_bottom_up_from_scratch(&inst, model, EngineConfig::default(), &topo);
        let t_inc = forest_inc.embed(root_inc, inst.source());
        let t_ref = forest_ref.embed(root_ref, inst.source());
        assert_identical(&t_inc, &t_ref);
    }
}
