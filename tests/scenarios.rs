//! Golden scenario matrix: every router × {clustered, intermingled,
//! single} × two seeds, each asserting its skew discipline and a
//! snapshotted wirelength.
//!
//! The engine is deterministic to the bit (the determinism suite pins
//! this across runs, thread counts and feature sets), so the wirelengths
//! are compared **exactly**. Any intentional change to merge ordering,
//! candidate generation or embedding shows up here as a diff; regenerate
//! the table with:
//!
//! ```sh
//! ASTDME_BLESS=1 cargo test --test scenarios -- --nocapture
//! ```
//!
//! and paste the printed rows over `GOLDEN` — after convincing yourself
//! the new numbers are an improvement (or a neutral reordering), not a
//! regression.

use astdme::instances::{partition, synthetic_instance, Placement};
use astdme::{AstDme, ClockRouter, ExtBst, GreedyDme, Instance, StitchPerGroup};

/// The paper's 10 ps bound, used by the grouped scenarios and EXT-BST.
const BOUND: f64 = 10e-12;

/// Sinks per instance: above the planner's brute-force cutoff so the grid
/// regime is exercised, small enough for debug-mode test runs.
const N: usize = 48;

/// Groups for the partitioned scenarios.
const GROUPS: usize = 4;

const SEEDS: [u64; 2] = [11, 2006];

const SCENARIOS: [&str; 3] = ["clustered", "intermingled", "single"];

/// Snapshotted total wirelengths (µm): (router, scenario, seed, exact
/// value). Regenerate with `ASTDME_BLESS=1` (see module docs).
const GOLDEN: [(&str, &str, u64, f64); 24] = [
    ("AST-DME", "clustered", 11, 802400.6127312368),
    ("AST-DME", "clustered", 2006, 753346.994098329),
    ("AST-DME", "intermingled", 11, 723659.520740885),
    ("AST-DME", "intermingled", 2006, 762473.3601707453),
    ("AST-DME", "single", 11, 805492.9124689212),
    ("AST-DME", "single", 2006, 779740.043175587),
    ("EXT-BST", "clustered", 11, 767432.796871537),
    ("EXT-BST", "clustered", 2006, 756677.8228802826),
    ("EXT-BST", "intermingled", 11, 767432.796871537),
    ("EXT-BST", "intermingled", 2006, 756677.8228802826),
    ("EXT-BST", "single", 11, 767432.796871537),
    ("EXT-BST", "single", 2006, 756677.8228802826),
    ("greedy-DME", "clustered", 11, 805492.9124689212),
    ("greedy-DME", "clustered", 2006, 779740.043175587),
    ("greedy-DME", "intermingled", 11, 805492.9124689212),
    ("greedy-DME", "intermingled", 2006, 779740.043175587),
    ("greedy-DME", "single", 11, 805492.9124689212),
    ("greedy-DME", "single", 2006, 779740.043175587),
    ("stitch-per-group", "clustered", 11, 877855.6521875508),
    ("stitch-per-group", "clustered", 2006, 804737.6530861706),
    ("stitch-per-group", "intermingled", 11, 1360429.2990397168),
    ("stitch-per-group", "intermingled", 2006, 1443811.5838095949),
    ("stitch-per-group", "single", 11, 805492.9124689212),
    ("stitch-per-group", "single", 2006, 779740.043175587),
];

fn placement(seed: u64) -> Placement {
    synthetic_instance(N, seed, &format!("gold{seed}"))
}

fn scenario(kind: &str, seed: u64) -> Instance {
    let p = placement(seed);
    let bounded = |inst: Instance| {
        inst.with_groups(
            inst.groups()
                .clone()
                .with_uniform_bound(BOUND)
                .expect("bound ok"),
        )
        .expect("regroup ok")
    };
    match kind {
        "clustered" => bounded(partition::clustered(&p, GROUPS, seed).expect("valid")),
        "intermingled" => bounded(partition::intermingled(&p, GROUPS, seed ^ 1).expect("valid")),
        // One global zero-bound group: the strictest discipline.
        "single" => partition::single(&p).expect("valid"),
        _ => unreachable!("unknown scenario {kind}"),
    }
}

fn routers() -> Vec<Box<dyn ClockRouter>> {
    vec![
        Box::new(AstDme::new()),
        Box::new(ExtBst::paper()),
        Box::new(GreedyDme::new()),
        Box::new(StitchPerGroup::new()),
    ]
}

/// The intra-group skew each cell must satisfy: EXT-BST routes to its own
/// global 10 ps bound regardless of scenario; everyone else answers for
/// the scenario's bound (zero in the `single` scenario).
fn skew_tol(router: &str, kind: &str) -> f64 {
    if router == "EXT-BST" || kind != "single" {
        BOUND * (1.0 + 1e-9)
    } else {
        1e-15
    }
}

#[test]
fn golden_scenario_matrix() {
    let bless = std::env::var_os("ASTDME_BLESS").is_some();
    let mut failures = Vec::new();
    for router in routers() {
        for kind in SCENARIOS {
            for seed in SEEDS {
                let inst = scenario(kind, seed);
                let out = router.route_traced(&inst).expect("routes");
                assert_eq!(
                    out.tree.sink_nodes().count(),
                    N,
                    "{} {kind} {seed}",
                    router.name()
                );
                let skew = out.report.max_intra_group_skew();
                assert!(
                    skew <= skew_tol(router.name(), kind),
                    "{} on {kind}/{seed}: intra-group skew {skew} over tolerance",
                    router.name()
                );
                let wl = out.report.wirelength();
                if bless {
                    println!("    (\"{}\", \"{kind}\", {seed}, {wl:?}),", router.name());
                    continue;
                }
                let expected = GOLDEN
                    .iter()
                    .find(|&&(r, s, sd, _)| r == router.name() && s == kind && sd == seed)
                    .map(|&(_, _, _, w)| w)
                    .unwrap_or_else(|| panic!("no golden row for {} {kind} {seed}", router.name()));
                if wl != expected {
                    failures.push(format!(
                        "{} on {kind}/{seed}: wirelength {wl:?} != snapshot {expected:?}",
                        router.name()
                    ));
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "wirelength snapshots diverged (rerun with ASTDME_BLESS=1 to regenerate):\n{}",
        failures.join("\n")
    );
}

/// The matrix itself encodes the paper's qualitative claims; spot-check
/// two of them against the snapshot so a blind re-bless that silently
/// flips an inequality still fails loudly.
#[test]
fn golden_matrix_preserves_paper_orderings() {
    let wl = |router: &str, kind: &str, seed: u64| {
        GOLDEN
            .iter()
            .find(|&&(r, s, sd, _)| r == router && s == kind && sd == seed)
            .map(|&(_, _, _, w)| w)
            .expect("row exists")
    };
    for seed in SEEDS {
        // Fig. 2: stitching wastes wire on intermingled groups.
        assert!(wl("AST-DME", "intermingled", seed) < wl("stitch-per-group", "intermingled", seed));
        // Associative skew never spends more wire than zero-skew routing.
        assert!(wl("AST-DME", "intermingled", seed) <= wl("greedy-DME", "intermingled", seed));
    }
}
