//! End-to-end integration tests: every router on synthetic benchmark
//! instances, constraints verified by the independent audit.

use astdme::instances::{partition, r_benchmark, synthetic_instance, RBench};
use astdme::{audit, AstDme, ClockRouter, DelayModel, ExtBst, GreedyDme, Instance, StitchPerGroup};

const BOUND: f64 = 10e-12;

fn small_intermingled(k: usize) -> Instance {
    // ~60 sinks keeps debug-mode runtime reasonable.
    let p = synthetic_instance(60, 11, "t60");
    let inst = partition::intermingled(&p, k, 3).expect("valid partition");
    inst.with_groups(
        inst.groups()
            .clone()
            .with_uniform_bound(BOUND)
            .expect("bound ok"),
    )
    .expect("regroup ok")
}

#[test]
fn ast_dme_satisfies_intra_group_bounds_intermingled() {
    let inst = small_intermingled(4);
    let tree = AstDme::new().route(&inst).expect("routes");
    let report = audit(&tree, &inst, &DelayModel::elmore(*inst.rc()));
    assert_eq!(tree.sink_nodes().count(), 60);
    assert!(
        report.max_intra_group_skew() <= BOUND * (1.0 + 1e-9),
        "intra-group skew {} exceeds bound",
        report.max_intra_group_skew()
    );
}

#[test]
fn ast_dme_zero_bound_yields_zero_intra_skew() {
    let p = synthetic_instance(40, 5, "t40");
    let inst = partition::intermingled(&p, 4, 9).expect("valid");
    let tree = AstDme::new().route(&inst).expect("routes");
    let report = audit(&tree, &inst, &DelayModel::elmore(*inst.rc()));
    assert!(
        report.max_intra_group_skew() < 1e-16,
        "zero-bound intra skew {}",
        report.max_intra_group_skew()
    );
    // Inter-group offsets are free and typically non-zero.
    assert!(report.global_skew() >= report.max_intra_group_skew());
}

#[test]
fn ext_bst_respects_global_bound_on_r1_sized_instance() {
    let p = synthetic_instance(80, 3, "t80");
    let inst = partition::single(&p).expect("valid");
    let tree = ExtBst::new(BOUND).route(&inst).expect("routes");
    let report = audit(&tree, &inst, &DelayModel::elmore(*inst.rc()));
    assert!(report.global_skew() <= BOUND * (1.0 + 1e-9));
}

#[test]
fn greedy_dme_zero_skew_everywhere() {
    let p = synthetic_instance(50, 17, "t50");
    let inst = partition::single(&p).expect("valid");
    let tree = GreedyDme::new().route(&inst).expect("routes");
    let report = audit(&tree, &inst, &DelayModel::elmore(*inst.rc()));
    assert!(report.global_skew() < 1e-16, "{}", report.global_skew());
}

#[test]
fn stitching_satisfies_constraints_but_wastes_wire_when_intermingled() {
    let inst = small_intermingled(4);
    let model = DelayModel::elmore(*inst.rc());
    let stitch = StitchPerGroup::new().route(&inst).expect("routes");
    let rs = audit(&stitch, &inst, &model);
    assert!(rs.max_intra_group_skew() <= BOUND * (1.0 + 1e-9));
    let ast = AstDme::new().route(&inst).expect("routes");
    let ra = audit(&ast, &inst, &model);
    assert!(
        ra.wirelength() < rs.wirelength(),
        "AST ({}) should beat stitching ({}) on intermingled groups",
        ra.wirelength(),
        rs.wirelength()
    );
}

#[test]
fn routers_are_deterministic() {
    let inst = small_intermingled(6);
    let a = AstDme::new().route(&inst).expect("routes");
    let b = AstDme::new().route(&inst).expect("routes");
    assert_eq!(a, b);
}

#[test]
fn clustered_partition_pipeline() {
    let p = r_benchmark(RBench::R1, 2006);
    let inst = partition::clustered(&p, 4, 0).expect("valid");
    let inst = inst
        .with_groups(inst.groups().clone().with_uniform_bound(BOUND).expect("ok"))
        .expect("ok");
    let tree = AstDme::new().route(&inst).expect("routes");
    let report = audit(&tree, &inst, &DelayModel::elmore(*inst.rc()));
    assert_eq!(tree.sink_nodes().count(), 267);
    assert!(report.max_intra_group_skew() <= BOUND * (1.0 + 1e-9));
}

#[test]
fn audit_wirelength_matches_tree_accounting() {
    let inst = small_intermingled(4);
    let tree = AstDme::new().route(&inst).expect("routes");
    let report = audit(&tree, &inst, &DelayModel::elmore(*inst.rc()));
    assert!((report.wirelength() - tree.total_wirelength()).abs() < 1e-9);
    assert!(report.snaking() <= report.wirelength());
}

#[test]
fn json_roundtrip_routes_identically() {
    let inst = small_intermingled(4);
    let json = astdme::instances::to_json(&inst);
    let back = astdme::instances::from_json(&json).expect("parses");
    let a = AstDme::new().route(&inst).expect("routes");
    let b = AstDme::new().route(&back).expect("routes");
    assert_eq!(a, b);
}
