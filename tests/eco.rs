//! Incremental ECO re-routing: the flush ≡ from-scratch invariant,
//! end-to-end.
//!
//! The contract of [`EcoSession::flush`]: after queueing any batch of
//! sink edits, the flushed outcome is **bit-identical to a from-scratch
//! route of the edited instance** under the session's plan — same tree,
//! same audit report — at every thread count, with and without an
//! attached subtree cache, across consecutive flushes (replay-of-replay),
//! for structural edits (insert/delete/RC retune, which fall back to a
//! full reroute), and for non-replayable plans. Net no-op batches
//! (move-then-move-back, insert-then-delete) return the standing tree
//! without routing. Runs under both feature sets in CI (default and
//! `parallel`).

use std::num::NonZeroUsize;
use std::sync::{Mutex, MutexGuard};

use astdme::instances::{partition, synthetic_instance};
use astdme::{
    run_with_cache, AstDme, ClockRouter, EcoEdit, EcoSession, GroupId, Groups, Instance, Point,
    RouteError, Sink, StitchPerGroup, SubtreeCache, TopoConfig,
};
use proptest::prelude::*;

const BOUND: f64 = 10e-12;

/// The thread override is process-global; tests that set it serialize on
/// this lock and restore the previous value via
/// `astdme_par::override_guard`.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn override_lock() -> MutexGuard<'static, ()> {
    OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn instance(n: usize, k: usize, seed: u64) -> Instance {
    let p = synthetic_instance(n, seed, "eco");
    let inst = partition::intermingled(&p, k, seed ^ 1).expect("valid partition");
    inst.with_groups(
        inst.groups()
            .clone()
            .with_uniform_bound(BOUND)
            .expect("bound ok"),
    )
    .expect("regroup ok")
}

/// The test's own mirror of the documented sequential edit semantics,
/// kept independent of the session's internals.
fn apply_expected(inst: &Instance, edits: &[EcoEdit]) -> Instance {
    let mut sinks = inst.sinks().to_vec();
    let mut assignment = inst.groups().assignment();
    let mut rc = *inst.rc();
    for edit in edits {
        match *edit {
            EcoEdit::Move { sink, to } => sinks[sink].pos = to,
            EcoEdit::Retune { sink, cap } => sinks[sink].cap = cap,
            EcoEdit::Insert { sink, group } => {
                sinks.push(sink);
                assignment.push(group.index());
            }
            EcoEdit::Delete { sink } => {
                sinks.remove(sink);
                assignment.remove(sink);
            }
            EcoEdit::RetuneRc(params) => rc = params,
        }
    }
    let groups = Groups::from_assignments(assignment, inst.groups().group_count())
        .expect("valid assignment")
        .with_bounds(inst.groups().bounds().to_vec())
        .expect("bounds carry over");
    Instance::new(sinks, groups, rc, inst.source()).expect("valid edited instance")
}

/// Three spread-out moves plus a load retune — small edit set on a
/// grid-regime instance, the replay's home turf.
fn sample_edits(inst: &Instance) -> Vec<EcoEdit> {
    let n = inst.sink_count();
    vec![
        EcoEdit::Move {
            sink: 5,
            to: Point::new(inst.sinks()[5].pos.x + 430.0, inst.sinks()[5].pos.y - 210.0),
        },
        EcoEdit::Move {
            sink: n / 2,
            to: Point::new(
                inst.sinks()[n / 2].pos.x - 125.0,
                inst.sinks()[n / 2].pos.y + 305.0,
            ),
        },
        EcoEdit::Retune {
            sink: n - 3,
            cap: 2.5e-14,
        },
    ]
}

/// The load-bearing invariant: a replayed flush is bit-identical to a
/// from-scratch route of the edited instance, at every thread count the
/// determinism suite sweeps — and it must actually *replay* (adopting
/// recorded merges), or the speedup claim is vacuous.
#[test]
fn flush_matches_from_scratch_across_thread_counts() {
    let _lock = override_lock();
    let _guard = astdme_par::override_guard(NonZeroUsize::new(1));
    let inst = instance(120, 3, 7);
    let router = AstDme::new();
    let edits = sample_edits(&inst);
    let edited = apply_expected(&inst, &edits);
    let second_edit = vec![EcoEdit::Move {
        sink: 17,
        to: Point::new(
            edited.sinks()[17].pos.x + 260.0,
            edited.sinks()[17].pos.y + 90.0,
        ),
    }];
    let twice_edited = apply_expected(&edited, &second_edit);

    astdme_par::set_thread_override(NonZeroUsize::new(1));
    let want = router.route_traced(&edited).expect("routes");
    let want_twice = router.route_traced(&twice_edited).expect("routes");

    for threads in [1usize, 2, 3, 8] {
        astdme_par::set_thread_override(NonZeroUsize::new(threads));
        let mut session = EcoSession::new(&inst, router.plan()).expect("routes");
        for edit in &edits {
            session.queue(*edit);
        }
        let out = session.flush().expect("flushes");
        assert_eq!(out.tree, want.tree, "threads={threads}: trees diverged");
        assert_eq!(
            out.report, want.report,
            "threads={threads}: reports diverged"
        );
        let fs = session.last_flush();
        assert!(
            !fs.full_reroute,
            "threads={threads}: must replay, not reroute"
        );
        assert!(
            fs.adopted_merges > fs.fresh_merges,
            "threads={threads}: a 3-sink edit must adopt most merges \
             (adopted {}, fresh {})",
            fs.adopted_merges,
            fs.fresh_merges
        );
        assert_eq!(fs.dirty_sinks, 3, "threads={threads}");
        assert!(fs.replayed_rounds > 0, "threads={threads}");

        // Second flush: the replay must have produced a valid recording
        // of its own (replay-of-replay).
        for edit in &second_edit {
            session.queue(*edit);
        }
        let out = session.flush().expect("flushes again");
        assert_eq!(out.tree, want_twice.tree, "threads={threads}: second flush");
        assert_eq!(out.report, want_twice.report, "threads={threads}");
        assert!(!session.last_flush().full_reroute, "threads={threads}");
    }
}

/// Cached sessions: a flush matches the cached pipeline bit for bit, a
/// flush back to a memoized placement is satisfied by splicing, and the
/// flush after a hit (which drops the stale recording) still matches.
#[test]
fn cached_flush_matches_cached_pipeline_and_hits_on_return() {
    let _lock = override_lock();
    let _guard = astdme_par::override_guard(NonZeroUsize::new(1));
    let inst = instance(100, 3, 13);
    let plan = AstDme::new().plan();
    let cache = SubtreeCache::new(64);
    let mut session = EcoSession::with_cache(&inst, plan, cache.clone()).expect("routes");
    let base = session.outcome().clone();

    let moved = EcoEdit::Move {
        sink: 31,
        to: Point::new(
            inst.sinks()[31].pos.x + 380.0,
            inst.sinks()[31].pos.y + 140.0,
        ),
    };
    let edited = apply_expected(&inst, &[moved]);
    let want = run_with_cache(&edited, &plan, &SubtreeCache::new(4)).expect("routes");

    session.queue(moved);
    let out = session.flush().expect("flushes");
    assert_eq!(out.tree, want.tree, "cached flush diverged from pipeline");
    assert_eq!(out.report, want.report);
    assert_eq!(out.stats.cache_misses, 1, "replayed flush missed the cache");
    let fs = session.last_flush();
    assert!(!fs.full_reroute && fs.adopted_merges > 0, "must replay");

    // Moving back lands on the session-creation placement, which the
    // session inserted — a pure splice, bit-identical to the original.
    session.queue(EcoEdit::Move {
        sink: 31,
        to: inst.sinks()[31].pos,
    });
    let out = session.flush().expect("flushes back");
    assert!(out.stats.cache_hit, "return to a routed placement must hit");
    assert_eq!(out.tree, base.tree, "hit diverged from the original route");
    assert_eq!(out.report, base.report);
    assert!(session.last_flush().cache_hit);

    // A hit drops the stale recording; the next novel edit takes the
    // full-reroute path and must still match the pipeline.
    let moved_again = EcoEdit::Move {
        sink: 9,
        to: Point::new(inst.sinks()[9].pos.x - 270.0, inst.sinks()[9].pos.y + 55.0),
    };
    let edited = apply_expected(&inst, &[moved_again]);
    let want = run_with_cache(&edited, &plan, &SubtreeCache::new(4)).expect("routes");
    session.queue(moved_again);
    let out = session.flush().expect("flushes after hit");
    assert_eq!(out.tree, want.tree, "post-hit flush diverged");
    assert_eq!(out.report, want.report);
    assert!(session.last_flush().full_reroute, "no recording to replay");
}

/// Structural edits (insert, delete, RC retune) and non-replayable plans
/// fall back to a full reroute — and still match from-scratch exactly.
#[test]
fn structural_edits_and_fallback_plans_match_from_scratch() {
    let _lock = override_lock();
    let _guard = astdme_par::override_guard(NonZeroUsize::new(1));
    let inst = instance(60, 3, 23);

    // Insert + delete: net sink count unchanged but contents shifted.
    let router = AstDme::new();
    let structural = vec![
        EcoEdit::Insert {
            sink: Sink::new(Point::new(3100.0, 2200.0), 1.5e-14),
            group: GroupId(1),
        },
        EcoEdit::Delete { sink: 4 },
    ];
    let edited = apply_expected(&inst, &structural);
    let want = router.route_traced(&edited).expect("routes");
    let mut session = EcoSession::new(&inst, router.plan()).expect("routes");
    for edit in &structural {
        session.queue(*edit);
    }
    let out = session.flush().expect("flushes");
    assert_eq!(out.tree, want.tree, "structural flush diverged");
    assert_eq!(out.report, want.report);
    assert!(session.last_flush().full_reroute);

    // Greedy merge order and the stitching script are not recorded;
    // every flush is a full reroute and must still be exact.
    let greedy = AstDme::new().with_topo(TopoConfig::greedy());
    let stitch = StitchPerGroup::new();
    let edits = vec![EcoEdit::Move {
        sink: 11,
        to: Point::new(inst.sinks()[11].pos.x + 240.0, inst.sinks()[11].pos.y),
    }];
    let edited = apply_expected(&inst, &edits);
    for (plan, want) in [
        (greedy.plan(), greedy.route_traced(&edited).expect("routes")),
        (stitch.plan(), stitch.route_traced(&edited).expect("routes")),
    ] {
        let mut session = EcoSession::new(&inst, plan).expect("routes");
        session.queue(edits[0]);
        let out = session.flush().expect("flushes");
        assert_eq!(out.tree, want.tree, "fallback plan diverged");
        assert_eq!(out.report, want.report);
        assert!(session.last_flush().full_reroute);
    }
}

/// Net no-op batches — empty, move-then-move-back, insert-then-delete —
/// return the standing tree without routing, and a bad edit discards the
/// batch leaving the standing route untouched.
#[test]
fn noop_batches_return_standing_tree_and_bad_edits_are_rejected() {
    let _lock = override_lock();
    let _guard = astdme_par::override_guard(NonZeroUsize::new(1));
    let inst = instance(50, 2, 41);
    let mut session = EcoSession::new(&inst, AstDme::new().plan()).expect("routes");
    let before = session.outcome().clone();

    session.flush().expect("empty flush");
    assert!(session.last_flush().noop, "empty batch is a no-op");
    assert_eq!(session.last_flush().edits, 0);
    assert_eq!(session.outcome().tree, before.tree);

    let home = inst.sinks()[4].pos;
    session.queue(EcoEdit::Move {
        sink: 4,
        to: Point::new(home.x + 900.0, home.y - 500.0),
    });
    session.queue(EcoEdit::Move { sink: 4, to: home });
    session.flush().expect("cancelling moves");
    assert!(session.last_flush().noop, "move-then-back cancels out");
    assert_eq!(session.outcome().tree, before.tree);

    session.queue(EcoEdit::Insert {
        sink: Sink::new(Point::new(100.0, 100.0), 1e-14),
        group: GroupId(0),
    });
    session.queue(EcoEdit::Delete { sink: 50 });
    session.flush().expect("cancelling insert/delete");
    assert!(session.last_flush().noop, "insert-then-delete cancels out");
    assert_eq!(session.outcome().tree, before.tree);

    session.queue(EcoEdit::Move {
        sink: 999,
        to: Point::new(0.0, 0.0),
    });
    let err = session.flush().expect_err("out-of-range sink");
    assert!(matches!(err, RouteError::BadParameter(_)), "got {err:?}");
    assert!(session.pending().is_empty(), "failed flush discards batch");
    assert_eq!(session.outcome().tree, before.tree, "standing route intact");
}

fn arb_edit(n: usize) -> impl Strategy<Value = EcoEdit> {
    prop_oneof![
        (0..n, -900.0f64..900.0, -900.0f64..900.0).prop_map(|(s, dx, dy)| EcoEdit::Move {
            sink: s,
            to: Point::new(4000.0 + dx, 4000.0 + dy),
        }),
        (0..n, 5e-15f64..5e-14).prop_map(|(s, cap)| EcoEdit::Retune { sink: s, cap }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any interleaving of queued edits — including several edits to the
    /// same sink, where only the last one survives — flushes to exactly
    /// the net edit set's from-scratch route; and splitting the same
    /// batch across two flushes (replaying a replay) converges to the
    /// same tree.
    #[test]
    fn random_batches_flush_to_the_net_reroute(
        seed in 0u64..500,
        edit_seed in any::<u64>(),
        count in 1usize..7,
        split in 0usize..7,
    ) {
        let _lock = override_lock();
        let _guard = astdme_par::override_guard(NonZeroUsize::new(1));
        // The vendored proptest shim has no `collection::vec`; draw the
        // batch from a derived RNG instead.
        let mut erng = proptest::test_runner::TestRng::from_seed(edit_seed);
        let strat = arb_edit(48);
        let edits: Vec<EcoEdit> = (0..count).map(|_| strat.generate(&mut erng)).collect();
        let inst = instance(48, 3, seed);
        let router = AstDme::new();
        let edited = apply_expected(&inst, &edits);
        let want = router.route_traced(&edited).expect("routes");

        // One batch, one flush.
        let mut session = EcoSession::new(&inst, router.plan()).expect("routes");
        for edit in &edits {
            session.queue(*edit);
        }
        let out = session.flush().expect("flushes");
        prop_assert_eq!(&out.tree, &want.tree, "single flush diverged");
        prop_assert_eq!(&out.report, &want.report);

        // Same edits split across two flushes.
        let cut = split.min(edits.len());
        let mut session = EcoSession::new(&inst, router.plan()).expect("routes");
        for edit in &edits[..cut] {
            session.queue(*edit);
        }
        session.flush().expect("first half");
        for edit in &edits[cut..] {
            session.queue(*edit);
        }
        let out = session.flush().expect("second half");
        prop_assert_eq!(&out.tree, &want.tree, "split flush diverged");
        prop_assert_eq!(&out.report, &want.report);
    }
}
