//! Completion-order streaming: `route_stream` must yield exactly the
//! batch's `(index, outcome)` set — reordered by completion, never
//! altered — at every thread count, and its lifecycle edges (empty
//! stream, single instance, early drop, mid-stream panic) must neither
//! deadlock nor poison later completions.
//!
//! The stream is the serving-layer primitive the batch barrier is built
//! on: these tests pin the contract the future routing-as-a-service
//! daemon consumes.

use std::num::NonZeroUsize;
use std::sync::{Arc, Mutex, MutexGuard};

use astdme::instances::{partition, synthetic_instance};
use astdme::{
    route_batch, route_stream, AstDme, ClockRouter, Instance, RouteError, RouteOutcome,
    StreamPolicy,
};

const BOUND: f64 = 10e-12;

/// The thread override is process-global and the harness runs tests on
/// parallel threads: every test that sets it serializes on this lock (and
/// restores the previous value via `astdme_par::override_guard`).
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn override_lock() -> MutexGuard<'static, ()> {
    OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn portfolio() -> Vec<Instance> {
    [
        (40usize, 3usize, 7u64),
        (52, 4, 11),
        (33, 2, 23),
        (47, 5, 5),
    ]
    .iter()
    .map(|&(n, k, seed)| {
        let p = synthetic_instance(n, seed, &format!("stream{n}"));
        let inst = partition::intermingled(&p, k, seed ^ 1).expect("valid partition");
        inst.with_groups(
            inst.groups()
                .clone()
                .with_uniform_bound(BOUND)
                .expect("bound ok"),
        )
        .expect("regroup ok")
    })
    .collect()
}

fn assert_outcomes_identical(a: &RouteOutcome, b: &RouteOutcome, ctx: &str) {
    assert_eq!(a.tree, b.tree, "{ctx}: trees diverged");
    assert_eq!(a.report, b.report, "{ctx}: audit reports diverged");
}

#[test]
fn stream_drained_and_reordered_equals_the_batch_at_every_thread_count() {
    let _lock = override_lock();
    let _guard = astdme_par::override_guard(NonZeroUsize::new(1));
    let instances = portfolio();
    let router = Arc::new(AstDme::new());
    let reference = route_batch(&instances, router.as_ref());
    for threads in [1usize, 2, 3, 8] {
        astdme_par::set_thread_override(NonZeroUsize::new(threads));
        let stream = route_stream(
            instances.clone(),
            router.clone(),
            StreamPolicy::new().with_in_flight(2),
        );
        assert_eq!(stream.total(), instances.len());
        let mut slots: Vec<Option<Result<RouteOutcome, RouteError>>> =
            (0..instances.len()).map(|_| None).collect();
        for (idx, result) in stream {
            assert!(slots[idx].is_none(), "index {idx} yielded twice");
            slots[idx] = Some(result);
        }
        for (idx, slot) in slots.into_iter().enumerate() {
            let streamed = slot.unwrap_or_else(|| panic!("index {idx} never yielded"));
            assert_outcomes_identical(
                streamed.as_ref().expect("routes"),
                reference[idx].as_ref().expect("routes"),
                &format!("threads={threads} instance={idx}"),
            );
        }
    }
}

#[test]
fn empty_stream_is_immediately_exhausted() {
    let router: Arc<dyn ClockRouter + Send + Sync> = Arc::new(AstDme::new());
    let mut stream = route_stream(Vec::new(), router, StreamPolicy::new());
    assert_eq!(stream.total(), 0);
    assert_eq!(stream.size_hint(), (0, Some(0)));
    assert!(stream.next().is_none(), "no instances, no yields");
    assert!(stream.next().is_none(), "exhaustion is stable");
}

#[test]
fn single_instance_stream_yields_exactly_once() {
    let instances = vec![portfolio().remove(0)];
    let router = Arc::new(AstDme::new());
    let reference = router.route_traced(&instances[0]).expect("routes");
    let mut stream = route_stream(instances, router, StreamPolicy::new());
    let (idx, result) = stream.next().expect("one yield");
    assert_eq!(idx, 0);
    assert_outcomes_identical(&result.expect("routes"), &reference, "single instance");
    assert!(stream.next().is_none());
    assert_eq!(stream.yielded(), 1);
    assert_eq!(stream.remaining(), 0);
}

#[test]
fn dropping_the_stream_early_cancels_without_deadlock() {
    let _lock = override_lock();
    // Two workers, in-flight bound of 1, and more instances than either:
    // at drop time workers are claiming, routing, and blocking on a full
    // buffer — every state the cancellation path must unblock.
    let _guard = astdme_par::override_guard(NonZeroUsize::new(2));
    let instances: Vec<Instance> = portfolio().into_iter().cycle().take(12).collect();
    let router = Arc::new(AstDme::new());
    for consume in [0usize, 1, 3] {
        let mut stream = route_stream(
            instances.clone(),
            router.clone(),
            StreamPolicy::new().with_in_flight(1),
        );
        for _ in 0..consume {
            assert!(stream.next().is_some(), "stream has 12 instances");
        }
        drop(stream);
        // The pool must still be fully serviceable after the cancel —
        // a stuck worker would hang this follow-up barrier call.
        let after = route_batch(&instances[..2], router.as_ref());
        assert!(after.iter().all(Result::is_ok), "pool healthy after drop");
    }
}

/// A router that panics on one specific sink count — the failure the
/// stream must confine to a single yielded pair.
struct PanicOnSinkCount {
    trip: usize,
    inner: AstDme,
}

impl ClockRouter for PanicOnSinkCount {
    fn route_traced(&self, inst: &Instance) -> Result<RouteOutcome, RouteError> {
        assert_ne!(inst.sink_count(), self.trip, "injected stream panic");
        self.inner.route_traced(inst)
    }
    fn name(&self) -> &'static str {
        "panic-on-sink-count"
    }
}

#[test]
fn mid_stream_panic_surfaces_in_its_own_pair_and_later_completions_arrive() {
    let _lock = override_lock();
    let _guard = astdme_par::override_guard(NonZeroUsize::new(2));
    let instances = portfolio();
    let trip = instances[1].sink_count();
    let router = Arc::new(PanicOnSinkCount {
        trip,
        inner: AstDme::new(),
    });
    let stream = route_stream(instances.clone(), router, StreamPolicy::new());
    let mut yields: Vec<(usize, Result<RouteOutcome, RouteError>)> = stream.collect();
    assert_eq!(yields.len(), instances.len(), "panic must not eat yields");
    yields.sort_by_key(|(idx, _)| *idx);
    let clean = AstDme::new();
    for (idx, result) in yields {
        if idx == 1 {
            match result {
                Err(RouteError::Panicked {
                    instance,
                    sinks,
                    message,
                }) => {
                    assert_eq!(instance, 1);
                    assert_eq!(sinks, trip);
                    assert!(message.contains("injected stream panic"), "{message}");
                }
                other => panic!("expected Panicked for index 1, got {other:?}"),
            }
        } else {
            let streamed = result.expect("survivors route normally");
            let reference = clean.route_traced(&instances[idx]).expect("routes");
            assert_outcomes_identical(&streamed, &reference, &format!("survivor {idx}"));
        }
    }
}

#[test]
fn stream_policy_hardening_matches_the_batch_path() {
    use astdme::{BatchPolicy, Fault, FaultKind, FaultPlan, StageId};
    let _lock = override_lock();
    let _guard = astdme_par::override_guard(NonZeroUsize::new(2));
    let instances = portfolio();
    let faults = FaultPlan::new().inject(
        2,
        Fault {
            stage: StageId::Merge,
            kind: FaultKind::Panic,
        },
    );
    let policy = StreamPolicy::new().with_batch(BatchPolicy::new().with_faults(faults));
    let stream = route_stream(instances.clone(), Arc::new(AstDme::new()), policy);
    let mut yields: Vec<_> = stream.collect();
    yields.sort_by_key(|(idx, _)| *idx);
    assert!(matches!(
        &yields[2].1,
        Err(RouteError::Panicked { instance: 2, .. })
    ));
    for (idx, result) in yields.iter().filter(|(idx, _)| *idx != 2) {
        assert!(result.is_ok(), "survivor {idx} must route");
    }
}
