//! Content-addressed subtree cache: the hit ≡ recompute invariant,
//! end-to-end.
//!
//! The cache's contract: a cached outcome is a **pure function of the
//! instance and the router's plan** — a hit is bit-identical to the
//! recompute a miss performs, so cache capacity, sharing, eviction order,
//! and thread count can change wall-clock and hit counters, never a tree.
//! These tests pin that at every thread count the determinism suite
//! sweeps (1, 2, 3, 8, auto), under forced evictions (capacity-1 cache),
//! with the cache shared across a skewed batch, and across repeated
//! portfolios; plus a golden hit/miss/insert count for a repeated
//! portfolio at one thread, where lookup order is deterministic. For
//! instances anchored at the origin, translation normalization is the
//! exact identity and cached outcomes additionally coincide with the
//! cache-free path. Runs under both feature sets in CI (default and
//! `parallel`).

use std::num::NonZeroUsize;
use std::sync::{Mutex, MutexGuard};

use astdme::instances::{partition, synthetic_instance};
use astdme::{
    route_batch, route_batch_cached, sweep, AstDme, BatchPlan, BatchPolicy, ClockRouter, Groups,
    Instance, PerturbationSpec, Point, RcParams, RouteOutcome, Sink, StitchPerGroup, SubtreeCache,
    SweepConfig,
};
use proptest::prelude::*;

const BOUND: f64 = 10e-12;

/// The thread override is process-global; tests that set it serialize on
/// this lock and restore the previous value via
/// `astdme_par::override_guard`.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn override_lock() -> MutexGuard<'static, ()> {
    OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn instance(n: usize, k: usize, seed: u64) -> Instance {
    let p = synthetic_instance(n, seed, "cache");
    let inst = partition::intermingled(&p, k, seed ^ 1).expect("valid partition");
    inst.with_groups(
        inst.groups()
            .clone()
            .with_uniform_bound(BOUND)
            .expect("bound ok"),
    )
    .expect("regroup ok")
}

/// An instance on an exact-integer grid anchored at the origin: integer
/// translations of it are exact in f64, so translated copies share the
/// normalized fingerprint.
fn grid_instance(n: usize, k: usize) -> Instance {
    let sinks: Vec<Sink> = (0..n)
        .map(|i| {
            Sink::new(
                Point::new(700.0 * i as f64, 250.0 * (i % 3) as f64),
                1e-14 + 1e-15 * (i % 4) as f64,
            )
        })
        .collect();
    let assignment: Vec<usize> = (0..n).map(|i| i % k).collect();
    Instance::new(
        sinks,
        Groups::from_assignments(assignment, k)
            .expect("valid")
            .with_uniform_bound(BOUND)
            .expect("bound ok"),
        RcParams::default(),
        Point::new(1400.0, 3000.0),
    )
    .expect("valid")
}

/// Bit-exact structural equality; wall-clock and alloc stats (legitimately
/// run-dependent) are masked out.
fn assert_outcomes_identical(a: &RouteOutcome, b: &RouteOutcome, ctx: &str) {
    assert_eq!(a.tree, b.tree, "{ctx}: trees diverged");
    assert_eq!(a.report, b.report, "{ctx}: audit reports diverged");
    assert_eq!(
        (a.stats.merge.rounds, a.stats.merge.merges),
        (b.stats.merge.rounds, b.stats.merge.merges),
        "{ctx}: merge counters diverged"
    );
    assert_eq!(
        a.stats.repair.repair_iterations, b.stats.repair.repair_iterations,
        "{ctx}: repair counters diverged"
    );
}

/// The recompute reference: each instance routed through the *cached*
/// pipeline with its own fresh cache — a guaranteed miss, i.e. exactly
/// the work a hit claims to reproduce.
fn recompute_reference<R>(instances: &[Instance], router: &R) -> Vec<RouteOutcome>
where
    R: ClockRouter + Sync + ?Sized,
{
    instances
        .iter()
        .map(|inst| {
            let slot =
                route_batch_cached(std::slice::from_ref(inst), router, &SubtreeCache::new(1))
                    .pop()
                    .expect("one instance, one slot");
            let out = slot.expect("routes");
            assert!(!out.stats.cache_hit, "a fresh cache cannot hit");
            out
        })
        .collect()
}

/// A portfolio with repeats: duplicates, exact-integer translated copies,
/// and distinct fillers, deliberately skewed in size.
fn repeat_portfolio() -> Vec<Instance> {
    let a = grid_instance(14, 3);
    let b = instance(44, 4, 11); // the skew: ~3x the rest
    let c = grid_instance(9, 2);
    vec![
        a.clone(),
        b.clone(),
        a.translated(5000.0, -3000.0).expect("finite"),
        c.clone(),
        a,
        c.translated(-1250.0, 8000.0).expect("finite"),
        b,
    ]
}

/// The load-bearing invariant: a cached batch — fresh cache, shared warm
/// cache, or a capacity-1 cache thrashing through evictions — returns
/// outcomes bit-identical to the per-instance recompute at every thread
/// count.
#[test]
fn cached_batches_match_recompute_across_thread_counts() {
    let _lock = override_lock();
    let _guard = astdme_par::override_guard(NonZeroUsize::new(1));
    let instances = repeat_portfolio();
    let routers: Vec<Box<dyn ClockRouter + Sync>> =
        vec![Box::new(AstDme::new()), Box::new(StitchPerGroup::new())];
    for router in &routers {
        astdme_par::set_thread_override(NonZeroUsize::new(1));
        let reference = recompute_reference(&instances, router.as_ref());
        let shared = SubtreeCache::new(256);
        for threads in [1usize, 2, 3, 8] {
            astdme_par::set_thread_override(NonZeroUsize::new(threads));
            // A fresh cache, the shared (increasingly warm) cache, and a
            // capacity-1 cache that evicts on every distinct region.
            for (label, cache) in [
                ("fresh", SubtreeCache::new(256)),
                ("shared", shared.clone()),
                ("evicting", SubtreeCache::new(1)),
            ] {
                let cached = route_batch_cached(&instances, router.as_ref(), &cache);
                for (i, (got, want)) in cached.iter().zip(&reference).enumerate() {
                    let ctx = format!("{} {label} threads={threads} instance {i}", router.name());
                    assert_outcomes_identical(got.as_ref().expect("routes"), want, &ctx);
                }
            }
        }
        // Fully warm + auto threads: every region is resident, every
        // instance must hit, and outcomes still match exactly.
        astdme_par::set_thread_override(None);
        let warm = route_batch_cached(&instances, router.as_ref(), &shared);
        for (i, (got, want)) in warm.iter().zip(&reference).enumerate() {
            let got = got.as_ref().expect("routes");
            assert!(
                got.stats.cache_hit,
                "{} warm instance {i} must hit",
                router.name()
            );
            let ctx = format!("{} warm auto instance {i}", router.name());
            assert_outcomes_identical(got, want, &ctx);
        }
    }
}

/// For instances anchored at the origin, normalization is the exact
/// identity (`a - a = +0.0`), so the cached pipeline routes the very same
/// frame as the cache-free one: cached and uncached outcomes coincide.
#[test]
fn origin_anchored_cached_equals_uncached() {
    let _lock = override_lock();
    let _guard = astdme_par::override_guard(NonZeroUsize::new(2));
    let instances = vec![
        grid_instance(13, 3),
        grid_instance(8, 2),
        grid_instance(13, 3),
    ];
    for router in [&AstDme::new() as &(dyn ClockRouter + Sync)] {
        let uncached = route_batch(&instances, router);
        let cache = SubtreeCache::new(32);
        for pass in 0..2 {
            let cached = route_batch_cached(&instances, router, &cache);
            for (i, (got, want)) in cached.iter().zip(&uncached).enumerate() {
                assert_outcomes_identical(
                    got.as_ref().expect("routes"),
                    want.as_ref().expect("routes"),
                    &format!("origin-anchored pass {pass} instance {i}"),
                );
            }
        }
    }
}

/// Golden accounting: at one thread the lookup sequence is deterministic,
/// so the repeated-portfolio hit/miss/insert counts pin exactly. The
/// portfolio holds three distinct regions (the translated copies fold
/// into their originals), so the first pass misses 3 and hits 4; a second
/// pass over the same portfolio hits all 7.
#[test]
fn repeated_portfolio_hit_counts_are_golden() {
    let _lock = override_lock();
    let _guard = astdme_par::override_guard(NonZeroUsize::new(1));
    let instances = repeat_portfolio();
    let cache = SubtreeCache::new(64);
    let router = AstDme::new();
    let first = route_batch_cached(&instances, &router, &cache);
    assert!(first.iter().all(|r| r.is_ok()));
    let stats = cache.stats();
    assert_eq!(stats.misses, 3, "three distinct regions: {stats:?}");
    assert_eq!(stats.hits, 4, "duplicates and translations hit: {stats:?}");
    assert_eq!(stats.inserts, 3);
    assert_eq!(stats.evictions, 0);
    let second = route_batch_cached(&instances, &router, &cache);
    assert!(second.iter().all(|r| r.as_ref().unwrap().stats.cache_hit));
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses), (11, 3));
    assert!((stats.hit_rate() - 11.0 / 14.0).abs() < 1e-12);
    assert_eq!(cache.len(), 3);
}

/// An exact-integer translation of a routed placement must hit the cache
/// (translation normalization folds the copies together) — and the hit's
/// spliced tree must equal the recompute of the translated instance.
#[test]
fn integer_translated_duplicates_hit_and_splice_exactly() {
    let _lock = override_lock();
    let _guard = astdme_par::override_guard(NonZeroUsize::new(1));
    let base = grid_instance(12, 3);
    let moved = base.translated(123_456.0, -77_000.0).expect("finite");
    let router = AstDme::new();
    let want = recompute_reference(std::slice::from_ref(&moved), &router);
    let cache = SubtreeCache::new(8);
    let batch = route_batch_cached(&[base, moved], &router, &cache);
    let spliced = batch[1].as_ref().expect("routes");
    assert!(spliced.stats.cache_hit, "translated copy must hit");
    assert_outcomes_identical(spliced, &want[0], "translated splice");
}

/// A sweep's report is independent of cache state: fresh, carried-warm,
/// and capacity-1 evicting caches all reproduce the same report — under
/// zero noise (every variant identical: one miss, then all hits) and
/// under jitter (mostly misses; equality must hold regardless of hit
/// rate). With an origin-anchored nominal and zero noise the cached
/// report also equals the cache-free one.
#[test]
fn sweep_reports_are_independent_of_cache_state() {
    let _lock = override_lock();
    let _guard = astdme_par::override_guard(NonZeroUsize::new(2));
    let nominal = instance(16, 3, 29);
    for spec in [
        PerturbationSpec::new(7),
        PerturbationSpec::new(7)
            .with_position_jitter(120.0)
            .with_load_jitter(0.1),
    ] {
        let config = SweepConfig::new(10).with_chunk(4);
        let cache = SubtreeCache::new(128);
        let fresh = sweep(
            &nominal,
            &spec,
            &config.clone().with_cache(cache.clone()),
            &AstDme::new(),
        )
        .expect("sweeps");
        // Carried warm cache and a thrashing capacity-1 cache: same bits.
        let warm = sweep(
            &nominal,
            &spec,
            &config.clone().with_cache(cache.clone()),
            &AstDme::new(),
        )
        .expect("sweeps");
        let evicting = sweep(
            &nominal,
            &spec,
            &config.clone().with_cache(SubtreeCache::new(1)),
            &AstDme::new(),
        )
        .expect("sweeps");
        assert_eq!(fresh, warm, "carried cache changed a sweep report");
        assert_eq!(fresh, evicting, "evictions changed a sweep report");
        assert_eq!(cache.stats().hits + cache.stats().misses, 20);
    }
    // Origin-anchored nominal, zero noise: cached == uncached, and the
    // hit counts pin exactly at one thread (variant 0 misses, the other
    // five hit).
    astdme_par::set_thread_override(NonZeroUsize::new(1));
    let nominal = grid_instance(11, 3);
    let spec = PerturbationSpec::new(3);
    let uncached = sweep(
        &nominal,
        &spec,
        &SweepConfig::new(6).with_chunk(3),
        &AstDme::new(),
    )
    .expect("sweeps");
    let cache = SubtreeCache::new(16);
    let cached = sweep(
        &nominal,
        &spec,
        &SweepConfig::new(6).with_chunk(3).with_cache(cache.clone()),
        &AstDme::new(),
    )
    .expect("sweeps");
    assert_eq!(uncached, cached, "origin-anchored sweep must coincide");
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses), (5, 1), "{stats:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For arbitrary instances and eviction pressure, a cached route is
    /// bit-identical to the recompute — including when the batch mixes
    /// duplicates so some slots hit and some miss, and across passes
    /// (cold-ish, then warm or still thrashing).
    #[test]
    fn cached_routing_matches_recompute(
        n in 5usize..18,
        k in 1usize..4,
        seed in any::<u64>(),
        capacity in 1usize..4,
    ) {
        let _lock = override_lock();
        let _guard = astdme_par::override_guard(NonZeroUsize::new(2));
        let a = instance(n, k, seed);
        let b = instance(n + 3, k, seed ^ 0xA5A5);
        let batch = vec![a.clone(), b, a];
        let router = AstDme::new();
        let reference = recompute_reference(&batch, &router);
        let cache = SubtreeCache::new(capacity);
        for pass in 0..2 {
            let cached = route_batch_cached(&batch, &router, &cache);
            for (i, (got, want)) in cached.iter().zip(&reference).enumerate() {
                let ctx = format!("pass {pass} instance {i} (capacity {capacity})");
                assert_outcomes_identical(got.as_ref().expect("routes"), want, &ctx);
            }
        }
    }

    /// Integer translations on the exact grid always fold into the same
    /// cache entry, and the spliced result equals the recompute of the
    /// translated instance.
    #[test]
    fn integer_translations_share_one_entry(
        n in 4usize..14,
        k in 1usize..4,
        dx in -50_000i64..50_000,
        dy in -50_000i64..50_000,
    ) {
        let _lock = override_lock();
        let _guard = astdme_par::override_guard(NonZeroUsize::new(1));
        let base = grid_instance(n, k);
        let moved = base.translated(dx as f64, dy as f64).expect("finite");
        let router = AstDme::new();
        let want = recompute_reference(std::slice::from_ref(&moved), &router);
        let cache = SubtreeCache::new(4);
        let batch = route_batch_cached(&[base, moved], &router, &cache);
        prop_assert_eq!(cache.len(), 1, "translations must share one entry");
        let spliced = batch[1].as_ref().expect("routes");
        assert_outcomes_identical(spliced, &want[0], "proptest translated splice");
    }
}

/// `BatchPolicy::with_cache` composes with the hardening policy: injected
/// faults still fail only their own slot, corrupted output is never
/// memoized, and survivors match the clean recompute bit for bit.
#[test]
fn cache_composes_with_fault_injection() {
    use astdme::{Fault, FaultKind, FaultPlan, RouteError, StageId};
    let _lock = override_lock();
    let _guard = astdme_par::override_guard(NonZeroUsize::new(1));
    let a = grid_instance(10, 2);
    let instances = vec![a.clone(), a.clone(), a];
    let cache = SubtreeCache::new(16);
    // Corrupt the FIRST scheduled route (all costs tie, so schedule order
    // is input order): its output must be rejected, not cached, and the
    // later duplicates must route clean.
    let policy = BatchPolicy::new()
        .with_cache(cache.clone())
        .with_faults(FaultPlan::new().inject(
            0,
            Fault {
                stage: StageId::Embed,
                kind: FaultKind::Corrupt,
            },
        ));
    let plan = BatchPlan::new(&instances);
    let (batch, _) = plan.route_with_policy(&instances, &AstDme::new(), &policy);
    assert!(matches!(batch[0], Err(RouteError::MalformedOutput { .. })));
    let clean = recompute_reference(&instances, &AstDme::new());
    for i in [1usize, 2] {
        assert_outcomes_identical(
            batch[i].as_ref().expect("survivor routes"),
            &clean[i],
            &format!("survivor {i}"),
        );
    }
    // The corrupted slot inserted nothing; the surviving duplicate did.
    let stats = cache.stats();
    assert_eq!(
        stats.inserts, 1,
        "corrupt output must not be memoized: {stats:?}"
    );
}
