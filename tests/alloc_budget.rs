//! Deterministic allocation-budget regression test for the merge hot
//! path: the bottom-up merge loop (incremental planner + engine expansion)
//! must stay at O(1) amortized heap allocations per merge — no per-pair
//! `Scratch`, overlay hash maps, or per-candidate `DelayMap` spills.
//!
//! Allocation *counts* are deterministic for a fixed build where timings
//! are not, so this is the CI-stable form of the `scaling` bench's
//! `allocs_per_merge` section (same counting-allocator technique).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use astdme::instances::{partition, synthetic_instance};
use astdme::{run_bottom_up, DelayModel, EngineConfig, Instance, TopoConfig};

/// Twin of the counting allocator in `crates/bench/src/bin/scaling.rs` —
/// the library crates forbid `unsafe_code`, so each binary hosts its own
/// copy; keep them counting the same events.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counter has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        astdme_core::allocmeter::on_alloc();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        astdme_core::allocmeter::on_alloc();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The recorded baseline is ~10-12 allocs/merge (see `allocs_per_merge`
/// in `BENCH_scaling.json`); the budget leaves headroom for legitimate
/// drift while still catching a reintroduced per-pair allocation (each
/// costs tens per merge: merges expand several pairs, and pair-cost
/// estimation runs per candidate pair).
const BUDGET_PER_MERGE: f64 = 64.0;

fn instance(n: usize) -> Instance {
    let p = synthetic_instance(n, 2006, &format!("a{n}"));
    let inst = partition::intermingled(&p, 4, 2006 ^ 0xBEEF).expect("valid partition");
    inst.with_groups(
        inst.groups()
            .clone()
            .with_uniform_bound(10e-12)
            .expect("bound ok"),
    )
    .expect("regroup ok")
}

/// With an instrumented allocator installed, the pipeline's per-stage
/// allocation deltas ([`astdme::StageStats::allocs`]) must be populated —
/// the merge stage dominates and can never be zero on a real instance.
#[test]
fn pipeline_surfaces_per_stage_alloc_counts() {
    use astdme::ClockRouter;
    let inst = instance(60);
    let out = astdme::AstDme::new().route_traced(&inst).expect("routes");
    assert!(
        out.stats.merge.allocs > 0,
        "merge stage must observe allocations: {:?}",
        out.stats
    );
    assert!(out.stats.total_allocs() >= out.stats.merge.allocs);
    assert!(!out.stats.cache_hit, "no cache attached");
}

#[test]
fn merge_loop_allocations_stay_in_budget() {
    // Large enough to leave the planner's brute-force regime and trigger
    // multi-merge refresh sweeps; small enough for a debug-build test.
    let n = 500;
    let inst = instance(n);
    let model = DelayModel::elmore(*inst.rc());
    let engine = EngineConfig::fast();
    let count = |topo: &TopoConfig| {
        let before = ALLOC_COUNT.load(Ordering::Relaxed);
        let (_forest, _root) = run_bottom_up(&inst, model, engine, topo);
        ALLOC_COUNT.load(Ordering::Relaxed) - before
    };
    for (name, topo) in [
        ("greedy", TopoConfig::greedy()),
        ("multi_merge", TopoConfig::default()),
    ] {
        let first = count(&topo);
        let second = count(&topo);
        // The routing itself is deterministic, but the counter is
        // process-global and the test harness keeps service threads (its
        // watchdog allocates a handful of times), so two runs may differ
        // by a few strays — never by a reintroduced per-pair allocation,
        // which costs thousands here.
        assert!(
            first.abs_diff(second) <= 32,
            "{name}: allocation counts diverged beyond harness noise \
             ({first} vs {second})"
        );
        let per_merge = first.min(second) as f64 / (n - 1) as f64;
        assert!(
            per_merge <= BUDGET_PER_MERGE,
            "{name}: {per_merge:.2} allocs/merge exceeds the {BUDGET_PER_MERGE} budget \
             ({} allocations over {} merges)",
            first.min(second),
            n - 1
        );
    }
}
