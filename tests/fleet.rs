//! Fleet-layer determinism: `route_batch` output must be bit-identical to
//! a sequential `route_traced` loop at every thread count.
//!
//! The batch layer fans whole instances out over `astdme_par`'s
//! work-stealing workers, costliest instance first (input-ordered
//! reassembly), and forces nested engine parallelism serial on worker
//! threads; all of these mechanisms change scheduling only. Sweeping the
//! process-global thread override proves it: trees, reports and merge
//! counters all match the single-thread reference exactly — including on
//! a deliberately skewed large+small portfolio, the shape the
//! work-stealing schedule exists for. Runs under both feature sets in CI
//! (default and `parallel`). A panicking router must fail only its own
//! instance's slot.

use std::num::NonZeroUsize;
use std::sync::{Mutex, MutexGuard};

use astdme::instances::{partition, synthetic_instance};
use astdme::{
    route_batch, AstDme, ClockRouter, GreedyDme, Instance, RouteError, RouteOutcome, StitchPerGroup,
};

const BOUND: f64 = 10e-12;

/// The thread override is process-global and the harness runs tests on
/// parallel threads: every test that sets it serializes on this lock (and
/// restores the previous value via `astdme_par::override_guard`), so a
/// sweep actually runs at the thread counts it claims to.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn override_lock() -> MutexGuard<'static, ()> {
    OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn portfolio() -> Vec<Instance> {
    // Distinct sizes, seeds and group counts: input order is observable.
    [
        (40usize, 3usize, 7u64),
        (52, 4, 11),
        (33, 2, 23),
        (47, 5, 5),
    ]
    .iter()
    .map(|&(n, k, seed)| {
        let p = synthetic_instance(n, seed, &format!("fleet{n}"));
        let inst = partition::intermingled(&p, k, seed ^ 1).expect("valid partition");
        inst.with_groups(
            inst.groups()
                .clone()
                .with_uniform_bound(BOUND)
                .expect("bound ok"),
        )
        .expect("regroup ok")
    })
    .collect()
}

/// Bit-exact structural equality, with the stats' wall-clock fields
/// (legitimately run-dependent) masked out.
fn assert_outcomes_identical(a: &RouteOutcome, b: &RouteOutcome, ctx: &str) {
    assert_eq!(a.tree, b.tree, "{ctx}: trees diverged");
    assert_eq!(a.report, b.report, "{ctx}: audit reports diverged");
    assert_eq!(
        (a.stats.merge.rounds, a.stats.merge.merges),
        (b.stats.merge.rounds, b.stats.merge.merges),
        "{ctx}: merge counters diverged"
    );
    assert_eq!(
        a.stats.repair.repair_iterations, b.stats.repair.repair_iterations,
        "{ctx}: repair counters diverged"
    );
}

#[test]
fn route_batch_is_bit_identical_across_thread_counts() {
    // RAII: restores whatever override was active even if an assert
    // below fires mid-sweep, so this test cannot poison its siblings.
    let _lock = override_lock();
    let _guard = astdme_par::override_guard(NonZeroUsize::new(1));
    let instances = portfolio();
    let routers: Vec<Box<dyn ClockRouter + Sync>> = vec![
        Box::new(AstDme::new()),
        Box::new(GreedyDme::new()),
        Box::new(StitchPerGroup::new()),
    ];
    for router in &routers {
        // The single-thread reference: a plain sequential loop.
        astdme_par::set_thread_override(NonZeroUsize::new(1));
        let reference: Vec<RouteOutcome> = instances
            .iter()
            .map(|inst| router.route_traced(inst).expect("routes"))
            .collect();
        for threads in [1usize, 2, 3, 8] {
            astdme_par::set_thread_override(NonZeroUsize::new(threads));
            let batch = route_batch(&instances, router.as_ref());
            assert_eq!(batch.len(), instances.len());
            for (i, (out, want)) in batch.iter().zip(&reference).enumerate() {
                let out = out.as_ref().expect("routes");
                let ctx = format!("{} threads={threads} instance {i}", router.name());
                assert_outcomes_identical(out, want, &ctx);
            }
        }
        astdme_par::set_thread_override(None);
        let auto = route_batch(&instances, router.as_ref());
        for (i, (out, want)) in auto.iter().zip(&reference).enumerate() {
            let out = out.as_ref().expect("routes");
            let ctx = format!("{} threads=auto instance {i}", router.name());
            assert_outcomes_identical(out, want, &ctx);
        }
    }
}

/// A deliberately skewed portfolio: one instance roughly an order of
/// magnitude larger than the rest — under the old fixed contiguous-chunk
/// schedule the large instance's worker also dragged its chunk-mates; the
/// cost-model + work-stealing schedule must still return the exact
/// sequential results in input order.
fn skewed_portfolio() -> Vec<Instance> {
    [
        (34usize, 2usize, 3u64),
        (300, 4, 17), // the heavyweight, deliberately not first or last once scheduled
        (28, 2, 19),
        (45, 3, 29),
        (31, 2, 41),
        (52, 4, 43),
    ]
    .iter()
    .map(|&(n, k, seed)| {
        let p = synthetic_instance(n, seed, &format!("skew{n}"));
        let inst = partition::intermingled(&p, k, seed ^ 1).expect("valid partition");
        inst.with_groups(
            inst.groups()
                .clone()
                .with_uniform_bound(BOUND)
                .expect("bound ok"),
        )
        .expect("regroup ok")
    })
    .collect()
}

#[test]
fn skewed_portfolio_batch_equals_sequential_loop() {
    let _lock = override_lock();
    let _guard = astdme_par::override_guard(NonZeroUsize::new(1));
    let instances = skewed_portfolio();
    let router = AstDme::new().with_engine(astdme::EngineConfig::fast());
    let reference: Vec<RouteOutcome> = instances
        .iter()
        .map(|inst| router.route_traced(inst).expect("routes"))
        .collect();
    for threads in [1usize, 2, 3, 8] {
        astdme_par::set_thread_override(NonZeroUsize::new(threads));
        let batch = route_batch(&instances, &router);
        assert_eq!(batch.len(), instances.len());
        for (i, (out, want)) in batch.iter().zip(&reference).enumerate() {
            let out = out.as_ref().expect("routes");
            let ctx = format!("skewed threads={threads} instance {i}");
            assert_outcomes_identical(out, want, &ctx);
        }
    }
}

/// A router that panics on exactly one instance (identified by sink
/// count), delegating everything else to AST-DME.
struct PanicOnSinkCount {
    trip: usize,
    inner: AstDme,
}

impl ClockRouter for PanicOnSinkCount {
    fn route_traced(&self, inst: &Instance) -> Result<RouteOutcome, RouteError> {
        if inst.sink_count() == self.trip {
            panic!("injected panic at n={}", self.trip);
        }
        self.inner.route_traced(inst)
    }
    fn name(&self) -> &'static str {
        "panic-on-sink-count"
    }
}

#[test]
fn panicking_instance_fails_alone_and_leaves_the_rest_intact() {
    let _lock = override_lock();
    let _guard = astdme_par::override_guard(None);
    let instances: Vec<Instance> = portfolio().into_iter().take(3).collect();
    let trip = instances[1].sink_count();
    let router = PanicOnSinkCount {
        trip,
        inner: AstDme::new(),
    };
    let batch = route_batch(&instances, &router);
    assert_eq!(batch.len(), 3);
    match &batch[1] {
        Err(RouteError::Panicked {
            instance,
            sinks,
            message,
        }) => {
            assert_eq!(*instance, 1, "panic attributed to the wrong batch slot");
            assert_eq!(*sinks, trip);
            assert!(
                message.contains("injected panic"),
                "unexpected message: {message}"
            );
        }
        other => panic!("instance 1 should surface the panic, got {other:?}"),
    }
    // The other instances' outcomes are returned unchanged.
    for i in [0usize, 2] {
        let want = AstDme::new()
            .route_traced(&instances[i])
            .expect("reference routes");
        let out = batch[i].as_ref().expect("survivor routes");
        assert_outcomes_identical(out, &want, &format!("survivor instance {i}"));
    }
}

#[test]
fn route_batch_reports_per_instance_errors_in_place() {
    let mut instances = portfolio();
    let router = astdme::ExtBst::new(-1.0); // invalid bound: every route fails
    let batch = route_batch(&instances, &router);
    assert!(batch.iter().all(|r| r.is_err()));
    // A valid router over the same batch: all succeed, order preserved.
    let ok = route_batch(&instances, &AstDme::new());
    assert!(ok.iter().all(|r| r.is_ok()));
    instances.truncate(1);
    assert_eq!(route_batch(&instances, &AstDme::new()).len(), 1);
}
