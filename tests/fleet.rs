//! Fleet-layer determinism: `route_batch` output must be bit-identical to
//! a sequential `route_traced` loop at every thread count.
//!
//! The batch layer fans whole instances out via `astdme_par::par_map`
//! (input-ordered reassembly) and forces nested engine parallelism serial
//! on worker threads; both mechanisms change scheduling only. Sweeping
//! the process-global thread override proves it: trees, reports and merge
//! counters all match the single-thread reference exactly. Runs under
//! both feature sets in CI (default and `parallel`).

use std::num::NonZeroUsize;

use astdme::instances::{partition, synthetic_instance};
use astdme::{route_batch, AstDme, ClockRouter, GreedyDme, Instance, RouteOutcome, StitchPerGroup};

const BOUND: f64 = 10e-12;

fn portfolio() -> Vec<Instance> {
    // Distinct sizes, seeds and group counts: input order is observable.
    [
        (40usize, 3usize, 7u64),
        (52, 4, 11),
        (33, 2, 23),
        (47, 5, 5),
    ]
    .iter()
    .map(|&(n, k, seed)| {
        let p = synthetic_instance(n, seed, &format!("fleet{n}"));
        let inst = partition::intermingled(&p, k, seed ^ 1).expect("valid partition");
        inst.with_groups(
            inst.groups()
                .clone()
                .with_uniform_bound(BOUND)
                .expect("bound ok"),
        )
        .expect("regroup ok")
    })
    .collect()
}

/// Bit-exact structural equality, with the stats' wall-clock fields
/// (legitimately run-dependent) masked out.
fn assert_outcomes_identical(a: &RouteOutcome, b: &RouteOutcome, ctx: &str) {
    assert_eq!(a.tree, b.tree, "{ctx}: trees diverged");
    assert_eq!(a.report, b.report, "{ctx}: audit reports diverged");
    assert_eq!(
        (a.stats.merge.rounds, a.stats.merge.merges),
        (b.stats.merge.rounds, b.stats.merge.merges),
        "{ctx}: merge counters diverged"
    );
    assert_eq!(
        a.stats.repair.repair_iterations, b.stats.repair.repair_iterations,
        "{ctx}: repair counters diverged"
    );
}

#[test]
fn route_batch_is_bit_identical_across_thread_counts() {
    let instances = portfolio();
    let routers: Vec<Box<dyn ClockRouter + Sync>> = vec![
        Box::new(AstDme::new()),
        Box::new(GreedyDme::new()),
        Box::new(StitchPerGroup::new()),
    ];
    for router in &routers {
        // The single-thread reference: a plain sequential loop.
        astdme_par::set_thread_override(NonZeroUsize::new(1));
        let reference: Vec<RouteOutcome> = instances
            .iter()
            .map(|inst| router.route_traced(inst).expect("routes"))
            .collect();
        for threads in [1usize, 2, 3, 8] {
            astdme_par::set_thread_override(NonZeroUsize::new(threads));
            let batch = route_batch(&instances, router.as_ref());
            assert_eq!(batch.len(), instances.len());
            for (i, (out, want)) in batch.iter().zip(&reference).enumerate() {
                let out = out.as_ref().expect("routes");
                let ctx = format!("{} threads={threads} instance {i}", router.name());
                assert_outcomes_identical(out, want, &ctx);
            }
        }
        astdme_par::set_thread_override(None);
        let auto = route_batch(&instances, router.as_ref());
        for (i, (out, want)) in auto.iter().zip(&reference).enumerate() {
            let out = out.as_ref().expect("routes");
            let ctx = format!("{} threads=auto instance {i}", router.name());
            assert_outcomes_identical(out, want, &ctx);
        }
    }
}

#[test]
fn route_batch_reports_per_instance_errors_in_place() {
    let mut instances = portfolio();
    let router = astdme::ExtBst::new(-1.0); // invalid bound: every route fails
    let batch = route_batch(&instances, &router);
    assert!(batch.iter().all(|r| r.is_err()));
    // A valid router over the same batch: all succeed, order preserved.
    let ok = route_batch(&instances, &AstDme::new());
    assert!(ok.iter().all(|r| r.is_ok()));
    instances.truncate(1);
    assert_eq!(route_batch(&instances, &AstDme::new()).len(), 1);
}
