//! Robustness-sweep determinism and fleet fault tolerance.
//!
//! The contract under test: a seeded Monte Carlo sweep is bit-identical
//! at every thread count (the distribution report golden-tests exactly),
//! and injected faults — panics, deadline overruns, corrupted outputs —
//! fail only their own variant's slot while every survivor's outcome is
//! bit-identical to a fault-free run. Regenerate the golden distribution
//! after an intentional engine change with:
//!
//! ```sh
//! ASTDME_BLESS=1 cargo test --test robustness -- --nocapture
//! ```

use std::num::NonZeroUsize;
use std::sync::{Mutex, MutexGuard};

use astdme::instances::{partition, synthetic_instance};
use astdme::{
    robustness, AstDme, BatchPlan, BatchPolicy, EngineConfig, Fault, FaultKind, FaultPlan,
    Instance, PerturbationSpec, RouteError, StageId, SweepConfig,
};
use proptest::prelude::*;

const BOUND: f64 = 10e-12;

/// See `tests/fleet.rs`: thread-override users serialize on one lock.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn override_lock() -> MutexGuard<'static, ()> {
    OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The nominal instance every sweep perturbs: a 12-sink, 3-group
/// intermingled scenario, small enough for debug-mode 1000-variant runs.
fn nominal() -> Instance {
    let p = synthetic_instance(12, 2006, "robust");
    let inst = partition::intermingled(&p, 3, 5).expect("valid partition");
    inst.with_groups(
        inst.groups()
            .clone()
            .with_uniform_bound(BOUND)
            .expect("bound ok"),
    )
    .expect("regroup ok")
}

fn spec() -> PerturbationSpec {
    PerturbationSpec::new(0xA57_D43)
        .with_position_jitter(400.0)
        .with_load_jitter(0.25)
        .with_rc_jitter(0.1)
        .with_drop_rate(0.2)
        .with_survival_floor(0.5)
}

fn router() -> AstDme {
    AstDme::new().with_engine(EngineConfig::fast())
}

/// The golden fields of the 1000-variant report, in the order
/// [`report_fields`] lists them. Regenerate with `ASTDME_BLESS=1`.
const GOLDEN: [(&str, f64); 13] = [
    ("succeeded", 1000.0),
    ("global_skew.mean", 1.8866298491918902e-11),
    ("global_skew.min", 5.960689162191586e-12),
    ("global_skew.max", 5.772659083820915e-10),
    ("global_skew.p50", 1.0658365720399555e-11),
    ("global_skew.p90", 1.4802002408908253e-11),
    ("global_skew.p99", 2.313619649377505e-10),
    ("intra_group_skew.p99", 1.0000000000000379e-11),
    ("wirelength.mean", 306655.4597962914),
    ("wirelength.min", 184946.836784676),
    ("wirelength.max", 379293.570318688),
    ("wirelength.p50", 307124.795670469),
    ("wirelength.p99", 365711.7893648027),
];

fn report_fields(r: &robustness::RobustnessReport) -> Vec<(&'static str, f64)> {
    vec![
        ("succeeded", r.succeeded as f64),
        ("global_skew.mean", r.global_skew.mean),
        ("global_skew.min", r.global_skew.min),
        ("global_skew.max", r.global_skew.max),
        ("global_skew.p50", r.global_skew.p50),
        ("global_skew.p90", r.global_skew.p90),
        ("global_skew.p99", r.global_skew.p99),
        ("intra_group_skew.p99", r.intra_group_skew.p99),
        ("wirelength.mean", r.wirelength.mean),
        ("wirelength.min", r.wirelength.min),
        ("wirelength.max", r.wirelength.max),
        ("wirelength.p50", r.wirelength.p50),
        ("wirelength.p99", r.wirelength.p99),
    ]
}

/// The headline acceptance test: a seeded 1000-variant sweep, run at
/// several thread counts, produces one bit-exact distribution report —
/// golden-tested field by field.
#[test]
fn thousand_variant_sweep_is_bit_deterministic_and_golden() {
    let _lock = override_lock();
    let _guard = astdme_par::override_guard(NonZeroUsize::new(1));
    let bless = std::env::var_os("ASTDME_BLESS").is_some();
    let inst = nominal();
    let config = SweepConfig::new(1000).with_chunk(128);
    let mut reports = Vec::new();
    for threads in [1usize, 2, 3, 8] {
        astdme_par::set_thread_override(NonZeroUsize::new(threads));
        reports.push(robustness::sweep(&inst, &spec(), &config, &router()).expect("sweep runs"));
    }
    for (i, report) in reports.iter().enumerate().skip(1) {
        assert_eq!(report, &reports[0], "report diverged at sweep {i}");
    }
    let report = &reports[0];
    assert!(report.failures.is_empty(), "no faults injected");
    assert_eq!(report.variants, 1000);
    let fields = report_fields(report);
    if bless {
        println!("const GOLDEN: [(&str, f64); {}] = [", fields.len());
        for (name, v) in &fields {
            println!("    (\"{name}\", {v:?}),");
        }
        println!("];");
        return;
    }
    let mut failures = Vec::new();
    for ((name, got), (gname, want)) in fields.iter().zip(&GOLDEN) {
        assert_eq!(name, gname, "golden rows out of order");
        if got != want {
            failures.push(format!("{name}: {got:?} != snapshot {want:?}"));
        }
    }
    assert!(
        failures.is_empty(),
        "robustness distribution diverged (rerun with ASTDME_BLESS=1):\n{}",
        failures.join("\n")
    );
}

/// The fault-tolerance acceptance test: injecting a panic and a deadline
/// overrun into 2 of N variants yields exactly those 2 error slots, with
/// correct indices and kinds, and every survivor's outcome bit-identical
/// to the fault-free run.
#[test]
fn two_injected_faults_fail_exactly_two_variants() {
    let inst = nominal();
    let s = spec();
    let n = 8usize;
    let variants: Vec<Instance> = (0..n)
        .map(|i| s.variant(&inst, i).expect("variant builds"))
        .collect();
    let r = router();
    let plan = BatchPlan::new(&variants);
    let clean = plan.route(&variants, &r);
    // The stall (1.3 s) dwarfs the budget (1.0 s); the budget dwarfs what
    // any 12-sink variant needs, so exactly one deadline failure.
    let policy = BatchPolicy::new().with_deadline(1.0).with_faults(
        FaultPlan::new()
            .inject(
                2,
                Fault {
                    stage: StageId::Merge,
                    kind: FaultKind::Panic,
                },
            )
            .inject(
                5,
                Fault {
                    stage: StageId::Embed,
                    kind: FaultKind::Stall { seconds: 1.3 },
                },
            ),
    );
    let (faulted, _) = plan.route_with_policy(&variants, &r, &policy);
    let errors: Vec<usize> = (0..n).filter(|&i| faulted[i].is_err()).collect();
    assert_eq!(errors, vec![2, 5], "exactly the injected variants fail");
    match &faulted[2] {
        Err(RouteError::Panicked {
            instance, message, ..
        }) => {
            assert_eq!(*instance, 2);
            assert!(message.contains("injected fault"), "{message}");
        }
        other => panic!("variant 2: expected Panicked, got {other:?}"),
    }
    match &faulted[5] {
        Err(RouteError::DeadlineExceeded {
            instance, stage, ..
        }) => {
            assert_eq!(*instance, 5);
            assert_eq!(*stage, StageId::Embed);
        }
        other => panic!("variant 5: expected DeadlineExceeded, got {other:?}"),
    }
    for i in (0..n).filter(|i| !errors.contains(i)) {
        let want = clean[i].as_ref().expect("clean run routes");
        let got = faulted[i].as_ref().expect("survivor routes");
        assert_eq!(got.tree, want.tree, "survivor {i} tree diverged");
        assert_eq!(got.report, want.report, "survivor {i} report diverged");
    }
    // The same schedule through the sweep API accounts both failures.
    let report = robustness::sweep(
        &inst,
        &s,
        &SweepConfig::new(n)
            .with_chunk(3)
            .with_deadline(1.0)
            .with_faults(policy.faults.clone()),
        &r,
    )
    .expect("sweep runs");
    assert_eq!(report.succeeded, n - 2);
    assert_eq!(report.failures.len(), 2);
    assert_eq!(
        (report.failures[0].variant, report.failures[0].kind),
        (2, "panicked")
    );
    assert_eq!(
        (report.failures[1].variant, report.failures[1].kind),
        (5, "deadline_exceeded")
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Same seed + spec ⇒ bit-identical variant sets and a bit-identical
    /// report at thread overrides 1, 2, 3 and 8.
    #[test]
    fn sweep_is_bit_identical_across_thread_overrides(
        seed in any::<u64>(),
        jitter in 0.0..600.0f64,
        drop_rate in 0.0..0.4f64,
    ) {
        let _lock = override_lock();
        let _guard = astdme_par::override_guard(NonZeroUsize::new(1));
        let inst = nominal();
        let s = PerturbationSpec::new(seed)
            .with_position_jitter(jitter)
            .with_load_jitter(0.2)
            .with_rc_jitter(0.05)
            .with_drop_rate(drop_rate)
            .with_survival_floor(0.5);
        let config = SweepConfig::new(10).with_chunk(4);
        let r = router();
        let variants: Vec<Instance> = (0..10)
            .map(|i| s.variant(&inst, i).expect("variant builds"))
            .collect();
        let mut reference = None;
        for threads in [1usize, 2, 3, 8] {
            astdme_par::set_thread_override(NonZeroUsize::new(threads));
            // The variant set itself is derivation-order independent.
            for (i, v) in variants.iter().enumerate() {
                prop_assert_eq!(
                    &s.variant(&inst, i).expect("variant builds"), v,
                    "variant {} diverged at {} threads", i, threads
                );
            }
            let report = robustness::sweep(&inst, &s, &config, &r).expect("sweep runs");
            match &reference {
                None => reference = Some(report),
                Some(want) => prop_assert_eq!(
                    &report, want,
                    "report diverged at {} threads", threads
                ),
            }
        }
    }

    /// Injecting a fault into variant k never changes any survivor's tree.
    #[test]
    fn fault_on_variant_k_never_changes_survivors(
        k in 0usize..6,
        fault_stage in 0usize..4,
    ) {
        let inst = nominal();
        let s = spec();
        let variants: Vec<Instance> = (0..6)
            .map(|i| s.variant(&inst, i).expect("variant builds"))
            .collect();
        let r = router();
        let plan = BatchPlan::new(&variants);
        let clean = plan.route(&variants, &r);
        let stage = [StageId::Group, StageId::Merge, StageId::Embed, StageId::Repair][fault_stage];
        let policy = BatchPolicy::new().with_faults(FaultPlan::new().inject(
            k,
            Fault { stage, kind: FaultKind::Panic },
        ));
        let (faulted, _) = plan.route_with_policy(&variants, &r, &policy);
        for i in 0..6 {
            if i == k {
                prop_assert!(faulted[i].is_err(), "variant {} must fail", i);
                prop_assert_eq!(
                    faulted[i].as_ref().unwrap_err().kind(), "panicked",
                    "variant {} wrong failure kind", i
                );
            } else {
                let want = clean[i].as_ref().expect("clean run routes");
                let got = faulted[i].as_ref().expect("survivor routes");
                prop_assert_eq!(&got.tree, &want.tree, "survivor {} diverged", i);
            }
        }
    }
}
