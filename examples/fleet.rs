//! Fleet routing: a whole scenario portfolio through one batch call.
//!
//! The paper's evaluation routes every circuit × group count × router;
//! this example does the miniature version — one placement partitioned
//! five ways, routed by two routers via `route_batch` (the same code path
//! the bench tables and the `scaling` bench's `batch_throughput` section
//! drive). Each outcome carries the audit report and per-stage stats, so
//! the table below needs no external timers or re-audits.
//!
//! Run with: `cargo run --release --example fleet`

use astdme::instances::{partition, r_benchmark, RBench};
use astdme::{route_batch, AstDme, ClockRouter, GreedyDme, Instance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let placement = r_benchmark(RBench::R1, 7);
    let mut instances: Vec<Instance> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    for k in [4usize, 6, 8] {
        let inst = partition::intermingled(&placement, k, 13)?;
        instances.push(inst.with_groups(inst.groups().clone().with_uniform_bound(10e-12)?)?);
        labels.push(format!("intermingled k={k}"));
    }
    for k in [4usize, 8] {
        let inst = partition::clustered(&placement, k, 0)?;
        instances.push(inst.with_groups(inst.groups().clone().with_uniform_bound(10e-12)?)?);
        labels.push(format!("clustered    k={k}"));
    }

    let routers: Vec<Box<dyn ClockRouter + Sync>> =
        vec![Box::new(AstDme::new()), Box::new(GreedyDme::new())];
    for router in &routers {
        println!(
            "router: {} ({} instances batched)",
            router.name(),
            instances.len()
        );
        println!("| scenario | wirelen (um) | intra skew (ps) | rounds | merges | repair | merge (s) | total (s) |");
        println!("|----------|--------------|-----------------|--------|--------|--------|-----------|-----------|");
        for (label, out) in labels.iter().zip(route_batch(&instances, router.as_ref())) {
            let out = out?;
            println!(
                "| {label} | {:.0} | {:.4} | {} | {} | {} | {:.3} | {:.3} |",
                out.report.wirelength(),
                out.report.max_intra_group_skew() * 1e12,
                out.stats.merge.rounds,
                out.stats.merge.merges,
                out.stats.repair.repair_iterations,
                out.stats.merge.seconds,
                out.stats.total_seconds(),
            );
        }
        println!();
    }
    println!("Outcomes are input-ordered and bit-identical to a sequential");
    println!("loop at every thread count; on multicore machines the fleet");
    println!("layer fans instances out (inner expansion goes serial).");
    Ok(())
}
