//! Fleet routing: a whole scenario portfolio through one batch call.
//!
//! The paper's evaluation routes every circuit × group count × router;
//! this example does the miniature version — one placement partitioned
//! five ways, routed by two routers via the fleet layer (the same code
//! path the bench tables and the `scaling` bench's `batch_throughput`
//! section drive). Each outcome carries the audit report and per-stage
//! stats, so the table below needs no external timers or re-audits.
//!
//! Both batches run through an explicit `BatchPlan` (what `route_batch`
//! builds internally): the first router's plan uses the a-priori cost
//! model, its observed per-stage seconds then calibrate a shared
//! `CostModel`, and the second router's plan is refined by those
//! measurements — the schedule and the per-worker busy times are printed
//! with each batch.
//!
//! Run with: `cargo run --release --example fleet`

use astdme::instances::{partition, r_benchmark, RBench};
use astdme::{AstDme, GreedyDme};
use astdme::{BatchPlan, ClockRouter, CostModel, Instance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let placement = r_benchmark(RBench::R1, 7);
    let mut instances: Vec<Instance> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    for k in [4usize, 6, 8] {
        let inst = partition::intermingled(&placement, k, 13)?;
        instances.push(inst.with_groups(inst.groups().clone().with_uniform_bound(10e-12)?)?);
        labels.push(format!("intermingled k={k}"));
    }
    for k in [4usize, 8] {
        let inst = partition::clustered(&placement, k, 0)?;
        instances.push(inst.with_groups(inst.groups().clone().with_uniform_bound(10e-12)?)?);
        labels.push(format!("clustered    k={k}"));
    }

    let routers: Vec<Box<dyn ClockRouter + Sync>> =
        vec![Box::new(AstDme::new()), Box::new(GreedyDme::new())];
    // Calibrated across batches: the first batch's observed stage seconds
    // refine the schedule of the second.
    let mut model = CostModel::new();
    for router in &routers {
        let plan = BatchPlan::with_model(&instances, &model);
        println!(
            "router: {} ({} instances batched, schedule {:?})",
            router.name(),
            instances.len(),
            plan.order()
        );
        println!("| scenario | wirelen (um) | intra skew (ps) | rounds | merges | repair | merge (s) | total (s) |");
        println!("|----------|--------------|-----------------|--------|--------|--------|-----------|-----------|");
        let (outcomes, stats) = plan.route_with_stats(&instances, router.as_ref());
        for ((label, inst), out) in labels.iter().zip(&instances).zip(outcomes) {
            let out = out?;
            model.observe(inst, &out.stats);
            println!(
                "| {label} | {:.0} | {:.4} | {} | {} | {} | {:.3} | {:.3} |",
                out.report.wirelength(),
                out.report.max_intra_group_skew() * 1e12,
                out.stats.merge.rounds,
                out.stats.merge.merges,
                out.stats.repair.repair_iterations,
                out.stats.merge.seconds,
                out.stats.total_seconds(),
            );
        }
        println!(
            "workers: {}  balance (max/min busy): {:.2}",
            stats.workers(),
            stats.balance()
        );
        println!();
    }
    println!("Outcomes are input-ordered and bit-identical to a sequential");
    println!("loop at every thread count; on multicore machines the fleet");
    println!("layer fans instances out costliest-first over work-stealing");
    println!("workers (inner engine expansion goes serial on them).");
    Ok(())
}
