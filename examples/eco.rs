//! Incremental ECO re-routing: route once, nudge a few sinks, flush.
//!
//! Routes an intermingled instance through an [`EcoSession`], then moves
//! three sinks (an engineering change order) and flushes the batch. The
//! flush invalidates only the merge-path ancestors of the moved sinks and
//! replays the recorded merge script for everything else, so most of the
//! standing tree is reused — the printed stats show how many merges were
//! adopted from the script vs re-planned fresh, and the flush latency
//! next to a from-scratch route of the same edited instance. The two
//! trees are bit-identical; the session just gets there faster.
//!
//! Run with: `cargo run --release --example eco [n]`

use std::time::Instant;

use astdme::instances::{partition, synthetic_instance};
use astdme::{AstDme, ClockRouter, EcoEdit, EcoSession, Point};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4000);
    let p = synthetic_instance(n, 2006, "eco");
    let inst = partition::intermingled(&p, 4, 2006 ^ 0xBEEF)?;
    let inst = inst.with_groups(inst.groups().clone().with_uniform_bound(10e-12)?)?;

    let router = AstDme::new();
    let mut session = EcoSession::new(&inst, router.plan())?;
    println!(
        "routed n={n}: wirelength {:.0} um",
        session.outcome().report.wirelength()
    );

    // The ECO: three sinks drift to new placements (a late floorplan
    // tweak), queued as one batch.
    for (sink, dx, dy) in [
        (7usize, 420.0, -180.0),
        (n / 2, -260.0, 310.0),
        (n - 9, 150.0, 240.0),
    ] {
        let to = Point::new(inst.sinks()[sink].pos.x + dx, inst.sinks()[sink].pos.y + dy);
        session.queue(EcoEdit::Move { sink, to });
    }
    let t0 = Instant::now();
    let out = session.flush()?.clone();
    let flush_secs = t0.elapsed().as_secs_f64();
    println!(
        "flushed 3 moves:  wirelength {:.0} um  in {:.1} ms",
        out.report.wirelength(),
        flush_secs * 1e3
    );

    let stats = session.last_flush();
    let total = stats.adopted_merges + stats.fresh_merges;
    println!("\n| metric | value |");
    println!("|--------|-------|");
    println!("| dirty sinks | {} of {n} |", stats.dirty_sinks);
    println!(
        "| merges adopted from the standing script | {} of {total} ({:.1}%) |",
        stats.adopted_merges,
        100.0 * stats.adopted_merges as f64 / total.max(1) as f64
    );
    println!("| merges re-planned fresh | {} |", stats.fresh_merges);
    println!(
        "| rounds replayed / planned | {} / {} |",
        stats.replayed_rounds, stats.planned_rounds
    );

    // The receipt: a from-scratch route of the edited instance is the
    // same tree, just slower to produce.
    let t0 = Instant::now();
    let scratch = router.route_traced(session.instance())?;
    let scratch_secs = t0.elapsed().as_secs_f64();
    assert_eq!(out.tree, scratch.tree, "flush must be bit-identical");
    println!(
        "\nfrom-scratch reroute: {:.1} ms -> flush is {:.1}x faster, bit-identical tree",
        scratch_secs * 1e3,
        scratch_secs / flush_secs
    );
    Ok(())
}
