//! An SoC-like scenario: six clock domains whose registers are spread all
//! over the die (the paper's "difficult instances"). Compares all four
//! routers on the same placement.
//!
//! Run with: `cargo run --release --example intermingled_soc`

use astdme::instances::{partition, r_benchmark, RBench};
use astdme::{audit, AstDme, ClockRouter, DelayModel, ExtBst, GreedyDme, StitchPerGroup};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // r1-sized placement (267 sinks), six intermingled domains at the
    // paper's 10 ps intra-domain bound.
    let placement = r_benchmark(RBench::R1, 7);
    let inst = partition::intermingled(&placement, 6, 13)?;
    let inst = inst.with_groups(inst.groups().clone().with_uniform_bound(10e-12)?)?;
    let model = DelayModel::elmore(*inst.rc());

    println!("| Router | Wirelen (um) | Intra skew (ps) | Global skew (ps) |");
    println!("|--------|--------------|-----------------|------------------|");
    let routers: Vec<Box<dyn ClockRouter>> = vec![
        Box::new(AstDme::new()),
        Box::new(ExtBst::paper()),
        Box::new(GreedyDme::new()),
        Box::new(StitchPerGroup::new()),
    ];
    for r in routers {
        let tree = r.route(&inst)?;
        let report = audit(&tree, &inst, &model);
        println!(
            "| {} | {:.0} | {:.4} | {:.2} |",
            r.name(),
            report.wirelength(),
            report.max_intra_group_skew() * 1e12,
            report.global_skew() * 1e12
        );
    }
    println!("\nAST-DME enforces the bound only within domains; greedy-DME");
    println!("pays for zero skew everywhere; stitching shows the Fig. 2 waste.");
    Ok(())
}
