//! Clustered groups: memory-bank style floorplan where each group occupies
//! its own rectangle of the die (the paper's Table I regime). With little
//! opportunity to merge across groups, associative skew saves only a few
//! percent — run next to `intermingled_soc` to see the contrast.
//!
//! Run with: `cargo run --release --example clustered_banks`

use astdme::instances::{partition, r_benchmark, RBench};
use astdme::{audit, AstDme, ClockRouter, DelayModel, ExtBst};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let placement = r_benchmark(RBench::R1, 7);
    let model = DelayModel::elmore(placement.rc);

    // Baseline: one global 10 ps bound.
    let single = partition::single(&placement)?;
    let bst = ExtBst::paper().route(&single)?;
    let baseline = audit(&bst, &single, &model).wirelength();
    println!("EXT-BST baseline: {baseline:.0} um");

    println!("\n| #banks | AST-DME wirelen (um) | vs baseline | Global skew (ps) |");
    println!("|--------|----------------------|-------------|------------------|");
    for k in [4usize, 6, 8, 10] {
        let inst = partition::clustered(&placement, k, 0)?;
        let inst = inst.with_groups(inst.groups().clone().with_uniform_bound(10e-12)?)?;
        let tree = AstDme::new().route(&inst)?;
        let report = audit(&tree, &inst, &model);
        println!(
            "| {k} | {:.0} | {:+.2}% | {:.1} |",
            report.wirelength(),
            (1.0 - report.wirelength() / baseline) * 100.0,
            report.global_skew() * 1e12
        );
    }
    Ok(())
}
