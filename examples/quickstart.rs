//! Quickstart: route a small associative-skew instance and inspect the
//! result.
//!
//! Run with: `cargo run --example quickstart`

use astdme::{audit, AstDme, ClockRouter, DelayModel, Groups, Instance, Point, RcParams, Sink};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Eight flip-flops from two clock domains, interleaved on the die.
    // Skew must be zero *within* each domain; the domains are unrelated.
    let sinks: Vec<Sink> = (0..8)
        .map(|i| {
            Sink::new(
                Point::new(1500.0 * i as f64, if i % 2 == 0 { 0.0 } else { 900.0 }),
                (10.0 + 5.0 * (i % 3) as f64) * 1e-15,
            )
        })
        .collect();
    let groups = Groups::from_assignments(vec![0, 1, 0, 1, 0, 1, 0, 1], 2)?;
    let inst = Instance::new(
        sinks,
        groups,
        RcParams::default(),
        Point::new(5250.0, 5000.0),
    )?;

    let tree = AstDme::new().route(&inst)?;
    let report = audit(&tree, &inst, &DelayModel::elmore(*inst.rc()));

    println!("routed {} sinks", tree.sink_nodes().count());
    println!("total wirelength: {:.1} um", report.wirelength());
    println!(
        "intra-group skew: {:.3e} s (constraint: zero)",
        report.max_intra_group_skew()
    );
    println!(
        "inter-group offset (unconstrained by-product): {:.2} ps",
        report.global_skew() * 1e12
    );
    for (sink, delay) in report.sink_delays() {
        println!(
            "  sink {sink} (group {}): {:.3} ps",
            inst.group_of(*sink).index(),
            delay * 1e12
        );
    }
    Ok(())
}
