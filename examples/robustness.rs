//! Monte Carlo robustness sweep over a clustered scenario.
//!
//! A clustered partition (each group a spatial cluster — think register
//! banks placed together) is the shape where associative skew wins most;
//! this example asks how stable that win is under manufacturing-style
//! noise: sink placements jittered, loads and RC parameters perturbed,
//! and a tail of sinks dropped entirely. One nominal instance fans out
//! into 400 seeded variants through the fleet layer, and the report
//! distills the skew and wirelength distributions — every number
//! reproducible from the seed at any thread count.
//!
//! The second sweep turns on the fleet's hardening: a per-variant
//! deadline plus deliberately injected faults (a forced panic and a
//! corrupted output), showing that failures are accounted per variant
//! while every survivor routes bit-identically.
//!
//! Run with: `cargo run --release --example robustness`

use astdme::instances::{partition, r_benchmark, RBench};
use astdme::robustness::{sweep, MetricSummary, PerturbationSpec, SweepConfig};
use astdme::{AstDme, EngineConfig, Fault, FaultKind, FaultPlan, StageId};

fn row(name: &str, m: &MetricSummary, scale: f64, unit: &str) {
    println!(
        "| {name:<16} | {:>9.3} | {:>9.3} | {:>9.3} | {:>9.3} | {:>9.3} | {unit} |",
        m.mean * scale,
        m.min * scale,
        m.p50 * scale,
        m.p90 * scale,
        m.p99 * scale,
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The nominal instance: r1-derived placement, 4 clustered groups,
    // the paper's 10 ps intra-group bound.
    let placement = r_benchmark(RBench::R1, 7);
    let inst = partition::clustered(&placement, 4, 0)?;
    let inst = inst.with_groups(inst.groups().clone().with_uniform_bound(10e-12)?)?;

    let spec = PerturbationSpec::new(2006)
        .with_position_jitter(300.0) // ±300 µm placement noise
        .with_load_jitter(0.2) // ±20% sink load
        .with_rc_jitter(0.1) // ±10% unit R and C
        .with_drop_rate(0.05) // each sink lost with p = 5%
        .with_survival_floor(0.8); // but at least 80% survive

    let router = AstDme::new().with_engine(EngineConfig::fast());
    let sweep_started = std::time::Instant::now();
    let report = sweep(&inst, &spec, &SweepConfig::new(400), &router)?;
    let sweep_seconds = sweep_started.elapsed().as_secs_f64();

    println!(
        "clustered scenario, n={}, {} groups: {} variants, {} routed",
        inst.sink_count(),
        inst.groups().group_count(),
        report.variants,
        report.succeeded
    );
    // The sweep streams variants through the persistent worker pool with
    // no chunk barriers — workers never idle waiting for a chunk's
    // straggler, so this throughput number is the honest per-core rate.
    println!(
        "barrier-free sweep throughput: {:.1} variants/s ({:.2} s wall)",
        report.variants as f64 / sweep_seconds,
        sweep_seconds
    );
    println!(
        "| metric           |      mean |       min |       p50 |       p90 |       p99 | unit |"
    );
    println!(
        "|------------------|-----------|-----------|-----------|-----------|-----------|------|"
    );
    row("global skew", &report.global_skew, 1e12, "ps");
    row("intra-group skew", &report.intra_group_skew, 1e12, "ps");
    row("wirelength", &report.wirelength, 1e-3, "mm");

    // Hardened sweep: injected faults fail their own variants only.
    let faults = FaultPlan::new()
        .inject(
            5,
            Fault {
                stage: StageId::Merge,
                kind: FaultKind::Panic,
            },
        )
        .inject(
            23,
            Fault {
                stage: StageId::Embed,
                kind: FaultKind::Corrupt,
            },
        );
    // The injected panic is caught per-instance by the fleet layer;
    // silence the default hook's backtrace for readable output.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let hardened = sweep(
        &inst,
        &spec,
        &SweepConfig::new(64).with_deadline(30.0).with_faults(faults),
        &router,
    )?;
    std::panic::set_hook(hook);
    println!();
    println!(
        "hardened sweep: {} variants, {} routed, {} failed",
        hardened.variants,
        hardened.succeeded,
        hardened.failures.len()
    );
    for f in &hardened.failures {
        println!("  variant {:>3}  {:<17} {}", f.variant, f.kind, f.message);
    }
    Ok(())
}
