//! The four merge cases of the paper's Fig. 6, demonstrated one at a time
//! at the engine level (Figs. 1, 3, 4, 5 of the paper).
//!
//! Run with: `cargo run --example merge_cases`

use astdme::{
    DelayModel, EngineConfig, GroupId, Groups, Instance, MergeForest, Point, RcParams, Sink,
};
use astdme_geom::sdr_sample_arcs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rc = RcParams::default();
    let model = DelayModel::elmore(rc);

    // Case 1 (Fig. 1a): same group, zero skew -> a single merging segment.
    println!("== same group, zero skew (classic DME, Fig. 1a)");
    let inst = Instance::new(
        vec![
            Sink::new(Point::new(0.0, 0.0), 1e-14),
            Sink::new(Point::new(2000.0, 600.0), 3e-14),
        ],
        Groups::single(2)?,
        rc,
        Point::new(1000.0, 3000.0),
    )?;
    let mut f = MergeForest::for_instance_with_model(&inst, model, EngineConfig::default());
    let leaves = f.leaves();
    let m = f.merge(leaves[0], leaves[1]);
    let c = &f.candidates(m)[0];
    println!(
        "  merging segment: {} (an arc: {})",
        c.region,
        c.region.is_arc(1e-9)
    );
    println!("  group delay spread: {:.2e} s\n", c.delays.max_spread());

    // Case 2 (Fig. 3): different groups -> the SDR is the merging region.
    println!("== different groups (SDR merging region, Fig. 3)");
    let inst = Instance::new(
        vec![
            Sink::new(Point::new(0.0, 0.0), 1e-14),
            Sink::new(Point::new(2000.0, 600.0), 3e-14),
        ],
        Groups::from_assignments(vec![0, 1], 2)?,
        rc,
        Point::new(1000.0, 3000.0),
    )?;
    let mut f = MergeForest::for_instance_with_model(&inst, model, EngineConfig::default());
    let leaves = f.leaves();
    let a_region = f.candidates(leaves[0])[0].region;
    let b_region = f.candidates(leaves[1])[0].region;
    println!("  SDR iso-distance arcs between the sinks:");
    for (ea, locus) in sdr_sample_arcs(&a_region, &b_region, 5) {
        println!("    ea = {ea:7.1} um -> locus {locus}");
    }
    let m = f.merge(leaves[0], leaves[1]);
    println!(
        "  engine kept {} candidates across the SDR\n",
        f.candidates(m).len()
    );

    // Case 3 (Fig. 4, instance 1): partially shared groups -> reduced
    // merging region satisfying the shared group's constraint.
    println!("== share one group (instance 1, Fig. 4)");
    let inst = Instance::new(
        vec![
            Sink::new(Point::new(0.0, 0.0), 1e-14),      // a: G1
            Sink::new(Point::new(900.0, 100.0), 2e-14),  // b: G2
            Sink::new(Point::new(4000.0, 0.0), 2e-14),   // d: G1
            Sink::new(Point::new(4800.0, 400.0), 1e-14), // e: G3
        ],
        Groups::from_assignments(vec![0, 1, 0, 2], 3)?,
        rc,
        Point::new(2400.0, 3000.0),
    )?;
    let mut f = MergeForest::for_instance_with_model(&inst, model, EngineConfig::default());
    let leaves = f.leaves();
    let c = f.merge(leaves[0], leaves[1]); // Tc = a x b
    let d = f.merge(leaves[2], leaves[3]); // Tf = d x e
    let g = f.merge(c, d); // shares G1
    let cand = &f.candidates(g)[0];
    println!(
        "  merged G1 spread: {:.2e} s (constraint satisfied); groups present: {}",
        cand.delays.range(GroupId(0)).expect("G1").spread(),
        cand.delays.group_count()
    );
    println!("  (after this merge the involved groups are fused, per Fig. 6 steps 6-7)\n");

    // Case 4 (Fig. 5, instance 2): two shared groups with conflicting
    // feasible regions -> wire sneaking; see `cargo run -p astdme-bench
    // --bin fig5` for the full demonstration.
    println!("== share multiple groups (instance 2, Fig. 5): see bench binary fig5");
    Ok(())
}
