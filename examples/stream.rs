//! Streaming fleet routing: results in completion order, not batch order.
//!
//! `route_batch` is a barrier — nothing comes back until the slowest
//! instance finishes. `route_stream` hands back the same outcomes as an
//! iterator that yields each `(index, result)` the moment it completes,
//! so a consumer (a tail of a CI pipeline, a routing service, a UI) can
//! act on the easy nine tenths of a portfolio while the hard instance is
//! still merging.
//!
//! The portfolio below is deliberately skewed: one large instance and a
//! handful of small ones. The table prints outcomes in arrival order
//! with two clocks per row — the instance's own routing time and the
//! wall-clock moment it arrived at the consumer — and the footer
//! compares time-to-first-result against the full drain (the batch
//! barrier's wait).
//!
//! Run with: `cargo run --release --example stream`

use std::sync::Arc;
use std::time::Instant;

use astdme::instances::{partition, synthetic_instance};
use astdme::{route_stream, AstDme, Instance, StreamPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One heavy instance plus six light ones: the shape where a barrier
    // wastes the most consumer time.
    let mut instances: Vec<Instance> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    for (n, seed) in [
        (1200usize, 41u64),
        (150, 42),
        (180, 43),
        (160, 44),
        (140, 45),
        (170, 46),
        (130, 47),
    ] {
        let placement = synthetic_instance(n, seed, &format!("stream-n{n}"));
        let inst = partition::intermingled(&placement, 4, seed ^ 1)?;
        instances.push(inst.with_groups(inst.groups().clone().with_uniform_bound(10e-12)?)?);
        labels.push(format!("n={n}"));
    }

    let total = instances.len();
    let started = Instant::now();
    let stream = route_stream(
        instances,
        Arc::new(AstDme::new()),
        StreamPolicy::new().with_in_flight(4),
    );

    println!("streaming {total} instances (completion order):");
    println!("| arrival | instance | wirelen (um) | route (s) | arrived at (s) |");
    println!("|---------|----------|--------------|-----------|----------------|");
    let mut first_result = None;
    for (arrival, (idx, result)) in stream.enumerate() {
        let at = started.elapsed().as_secs_f64();
        first_result.get_or_insert(at);
        let out = result?;
        println!(
            "| {:>7} | {:<8} | {:>12.0} | {:>9.3} | {:>14.3} |",
            arrival,
            labels[idx],
            out.report.wirelength(),
            out.stats.total_seconds(),
            at,
        );
    }
    let drained = started.elapsed().as_secs_f64();

    println!();
    println!(
        "time to first result: {:.3} s   full drain (= batch barrier wait): {:.3} s",
        first_result.unwrap_or(drained),
        drained
    );
    println!("Outcomes are bit-identical to `route_batch`; only the delivery");
    println!("order differs. The schedule still runs costliest-first, so the");
    println!("small instances stream out while the large one is in flight.");
    Ok(())
}
