//! Offline vendored shim for the subset of `proptest` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace's
//! property tests run against this minimal re-implementation instead of the
//! real `proptest` crate:
//!
//! * [`strategy::Strategy`] with `prop_map`, numeric ranges, tuples,
//!   [`strategy::Just`], weighted [`prop_oneof!`], `any::<u64>()` and
//!   `prop::bool::ANY`;
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`),
//!   `prop_assert!`, `prop_assert_eq!`, `prop_assume!`.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! seed and case index instead of a minimized input), and the default case
//! count is 64. Generation is deterministic per test name, so failures
//! reproduce across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Strategies for generating values.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Value`.
    ///
    /// Unlike upstream proptest there is no shrinking: a strategy is just a
    /// deterministic function of the RNG stream.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let u01 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + u01 * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let u01 = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
            self.start() + u01 * (self.end() - self.start())
        }
    }

    impl Strategy for core::ops::Range<usize> {
        type Value = usize;
        fn generate(&self, rng: &mut TestRng) -> usize {
            let span = self.end - self.start;
            assert!(span > 0, "cannot sample from an empty range");
            self.start + (((rng.next_u64() as u128 * span as u128) >> 64) as usize)
        }
    }

    impl Strategy for core::ops::Range<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut TestRng) -> u64 {
            let span = self.end - self.start;
            assert!(span > 0, "cannot sample from an empty range");
            self.start + (((rng.next_u64() as u128 * span as u128) >> 64) as u64)
        }
    }

    impl Strategy for core::ops::Range<i64> {
        type Value = i64;
        fn generate(&self, rng: &mut TestRng) -> i64 {
            let span = (self.end - self.start) as u64;
            assert!(span > 0, "cannot sample from an empty range");
            self.start + (((rng.next_u64() as u128 * span as u128) >> 64) as i64)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, G);

    /// Weighted union over boxed strategies; the engine behind
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` arms.
        pub fn new_weighted(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs positive total weight");
            Self { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = ((rng.next_u64() as u128 * self.total as u128) >> 64) as u64;
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            self.arms.last().expect("non-empty union").1.generate(rng)
        }
    }

    /// Types with a canonical "any value" strategy (shim for
    /// `proptest::arbitrary::Arbitrary`).
    pub trait ArbitraryValue {
        /// Generates an arbitrary value of the type.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl ArbitraryValue for u64 {
        fn arbitrary_value(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl ArbitraryValue for u32 {
        fn arbitrary_value(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl ArbitraryValue for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`](crate::any).
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Any<T> {
        /// A strategy generating arbitrary values of `T`.
        pub const fn new() -> Self {
            Self(core::marker::PhantomData)
        }
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }
}

/// The test runner: RNG, config, and case outcomes.
pub mod test_runner {
    /// Deterministic RNG for value generation (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Creates an RNG from a seed.
        pub fn from_seed(seed: u64) -> Self {
            Self(seed)
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case's assumptions were not met; it is skipped, not failed.
        Reject(String),
        /// A `prop_assert!` failed.
        Fail(String),
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (shim for `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; the shim uses 64 to keep debug-mode
            // `cargo test` runtimes reasonable for the engine-level suites.
            Self { cases: 64 }
        }
    }

    /// Stable per-test seed derived from the test's name (FNV-1a), so runs
    /// are reproducible without a persistence file.
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// The crate itself, so `prop::bool::ANY` style paths resolve.
    pub use crate as prop;
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    /// Any boolean, uniformly.
    pub const ANY: crate::strategy::Any<::core::primitive::bool> = crate::strategy::Any::new();
}

/// A strategy generating arbitrary values of `T` (shim for
/// `proptest::arbitrary::any`).
pub fn any<T: strategy::ArbitraryValue>() -> strategy::Any<T> {
    strategy::Any::new()
}

/// Weighted or unweighted choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, Box::new($strat) as Box<dyn $crate::strategy::Strategy<Value = _>>),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, Box::new($strat) as Box<dyn $crate::strategy::Strategy<Value = _>>),)+
        ])
    };
}

/// Asserts a condition inside a property test, failing the case (not the
/// whole process) with context on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        // `match` rather than `if !cond`: clippy lints negated comparisons
        // inside macro expansions against the *caller's* crate.
        match $cond {
            true => {}
            false => {
                return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
            }
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        match $cond {
            true => {}
            false => {
                return Err($crate::test_runner::TestCaseError::Reject(
                    stringify!($cond).to_string(),
                ));
            }
        }
    };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// item runs `cases` generated inputs through its body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                let seed = $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)));
                let mut rng = $crate::test_runner::TestRng::from_seed(seed);
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = cfg.cases.saturating_mul(16).max(64);
                while accepted < cfg.cases {
                    attempts += 1;
                    if attempts > max_attempts {
                        panic!(
                            "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                            stringify!($name), accepted, cfg.cases
                        );
                    }
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);
                    )+
                    let outcome = (|| -> $crate::test_runner::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                            "proptest {} failed at case {} (seed {:#x}): {}",
                            stringify!($name), accepted, seed, msg
                        ),
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = f64> {
        prop_oneof![Just(0.0), 0.0..10.0f64]
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 1.0..2.0f64, n in 3usize..7) {
            prop_assert!((1.0..2.0).contains(&x));
            prop_assert!((3..7).contains(&n));
        }

        #[test]
        fn maps_and_tuples_compose(p in (small(), small()).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..20.0).contains(&p));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0.0..1.0f64) {
            prop_assume!(x > 0.5);
            prop_assert!(x > 0.5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_is_respected(b in prop::bool::ANY, u in any::<u64>()) {
            prop_assert!(u.wrapping_add(1).wrapping_sub(1) == u, "u64 roundtrip");
            let _ = b;
        }
    }
}
