//! Offline vendored shim for the subset of `rand_chacha` this workspace
//! uses: [`ChaCha12Rng`] seeded via [`rand_core::SeedableRng::seed_from_u64`].
//!
//! The generator is a genuine ChaCha12 keystream (12 rounds, RFC 7539 state
//! layout), so the statistical properties the instance synthesizers rely on
//! hold. The word stream is not guaranteed to be bit-identical to the
//! upstream `rand_chacha` crate (upstream's `seed_from_u64` key derivation
//! is an implementation detail); everything in this workspace only requires
//! determinism and uniformity, both of which hold.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The `rand_core` re-export surface used by callers
/// (`rand_chacha::rand_core::SeedableRng`).
pub mod rand_core {
    /// Deterministic construction from seeds.
    pub trait SeedableRng: Sized {
        /// Builds a generator from a 64-bit seed.
        fn seed_from_u64(seed: u64) -> Self;
    }
}

const ROUNDS: usize = 12;

/// A ChaCha12 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    state: [u32; 16],
    buf: [u32; 16],
    idx: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (out, (wi, si)) in self.buf.iter_mut().zip(w.iter().zip(self.state.iter())) {
            *out = wi.wrapping_add(*si);
        }
        // 64-bit block counter in words 12–13.
        let ctr = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = ctr as u32;
        self.state[13] = (ctr >> 32) as u32;
        self.idx = 0;
    }
}

impl rand_core::SeedableRng for ChaCha12Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Derive the 256-bit key from the seed with SplitMix64, the same
        // scheme rand_core documents for default seed expansion.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for i in 0..4 {
            let v = next();
            key[2 * i] = v as u32;
            key[2 * i + 1] = (v >> 32) as u32;
        }
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        state[4..12].copy_from_slice(&key);
        // Counter (12–13) and nonce (14–15) start at zero.
        let mut rng = Self {
            state,
            buf: [0; 16],
            idx: 16,
        };
        rng.refill();
        rng
    }
}

impl rand::RngCore for ChaCha12Rng {
    fn next_u64(&mut self) -> u64 {
        if self.idx + 2 > 16 {
            self.refill();
        }
        let lo = self.buf[self.idx] as u64;
        let hi = self.buf[self.idx + 1] as u64;
        self.idx += 2;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::rand_core::SeedableRng;
    use super::*;
    use rand::RngCore;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha12Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn output_looks_uniform() {
        // Crude sanity: mean of 10k draws of the top bit near 0.5.
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let ones: u32 = (0..10_000).map(|_| (rng.next_u64() >> 63) as u32).sum();
        assert!((4_500..5_500).contains(&ones), "top-bit ones: {ones}");
    }
}
