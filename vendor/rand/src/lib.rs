//! Offline vendored shim for the subset of `rand` this workspace uses.
//!
//! The build environment has no access to crates.io, so instead of the real
//! `rand` crate this workspace vendors a minimal, API-compatible substitute:
//! [`RngCore`], the [`Rng`] extension with `random_range` over `f64`/`usize`
//! ranges, and [`seq::SliceRandom::shuffle`] (Fisher–Yates). Generators are
//! deterministic and seedable; statistical quality is provided by the
//! generator implementation (see the `rand_chacha` shim).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random `u64`s. The only primitive the shim needs.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Ranges that can be sampled uniformly from an [`RngCore`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        let u01 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u01 * (self.end - self.start)
    }
}

impl SampleRange<usize> for core::ops::Range<usize> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        let span = self.end - self.start;
        assert!(span > 0, "cannot sample from an empty range");
        // Multiply-shift rejection-free mapping; bias is < 2^-64 per draw,
        // far below anything the synthetic benchmarks could observe.
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as usize;
        self.start + hi
    }
}

/// Convenience extension over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn random_range<T, RA: SampleRange<T>>(&mut self, range: RA) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Sm64(u64);
    impl RngCore for Sm64 {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn f64_range_stays_in_bounds() {
        let mut rng = Sm64(1);
        for _ in 0..1000 {
            let x = rng.random_range(2.0..5.0);
            assert!((2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn usize_range_covers_all_values() {
        let mut rng = Sm64(2);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[rng.random_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..50).collect();
        let mut rng = Sm64(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
