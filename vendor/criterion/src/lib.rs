//! Offline vendored shim for the subset of `criterion` this workspace's
//! benches use: `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery, each benchmark runs a
//! short warmup followed by `sample_size` timed samples and prints
//! min/median/mean wall-clock per iteration. Good enough to compare orders
//! of magnitude and spot regressions by eye; the workspace's real perf
//! tracking lives in the `scaling` binary's JSON output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Measurement harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let t0 = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = t0.elapsed();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        // Warmup + calibration: grow the iteration count until one sample
        // takes ≥ ~20 ms or we hit a generous cap.
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(20) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed.as_secs_f64() / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("durations are not NaN"));
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{}/{}: min {} median {} mean {} ({} samples x {} iters)",
            self.name,
            id,
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            self.samples,
            iters
        );
        self
    }

    /// Ends the group (upstream API compatibility; nothing to flush here).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: 10,
            _parent: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Re-export for benches that import `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        let mut calls = 0u64;
        g.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
        g.finish();
    }

    #[test]
    fn time_formatting_covers_scales() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" us"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
